package experiments

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"slices"
	"sync"
)

// The checkpoint journal: a JSONL file of completed row keys and
// payloads that makes long sweeps resumable. Every row that flows
// through a JournalSink is appended (and flushed) as a
// {"type":"row","table":...,"index":...,"row":[...]} record — the key
// is (table name, global row index), the payload is the rendered row,
// and adaptive-sweep rows additionally carry the full-precision
// refinement metric so resumed refinement ranks intervals on exactly
// the values a fresh run would compute. A sweep restarted with the
// journal as Scale.Resume replays journaled rows instead of
// re-simulating them, so an interrupted run finishes from where it
// died; a journal truncated mid-line by a kill is trimmed back to its
// last complete record on open.

// ErrJournalMismatch reports a resume journal whose recorded scale
// fingerprint differs from the scale of the resuming run.
var ErrJournalMismatch = errors.New("experiments: journal written at a different scale")

// journalRow is one completed row held in memory: the rendered payload
// plus the refinement metric for adaptive-sweep rows.
type journalRow struct {
	row       []string
	metric    float64
	hasMetric bool
}

// journalTable is the completed-row set of one table. next is one past
// the highest recorded index, maintained on every insert so direct
// (non-engine) Row appends stay O(1). metrics holds metric-only
// checkpoints: refinement metrics of foreign points fetched through the
// exchange, recorded so a resume does not depend on the collector.
type journalTable struct {
	header  []string
	note    string
	rows    map[int]journalRow
	metrics map[int]float64
	next    int
}

// journalHeaderRecord is the first line of a journal: the scale
// fingerprint that guards resumes against mixing incompatible runs.
type journalHeaderRecord struct {
	Type        string `json:"type"` // "journal"
	Fingerprint string `json:"fingerprint"`
}

// journalRowRecord is the on-disk form of one completed row. It is a
// superset of jsonlRowRecord, so journals and JSONL sink outputs share
// one line grammar (and MergeShards can read either).
type journalRowRecord struct {
	Type   string   `json:"type"` // "row"
	Table  string   `json:"table"`
	Index  int      `json:"index"`
	Row    []string `json:"row"`
	Metric *float64 `json:"metric,omitempty"`
}

// journalMetricRecord checkpoints the refinement metric of a point this
// shard does not own (fetched through the MetricExchange): no row to
// emit, but the metric keeps a resumed refinement off the network.
type journalMetricRecord struct {
	Type   string  `json:"type"` // "metric"
	Table  string  `json:"table"`
	Index  int     `json:"index"`
	Metric float64 `json:"metric"`
}

// Journal is the checkpoint store of one sweep process: the in-memory
// index of completed rows loaded from a prior run (consulted via
// Scale.Resume) plus the append side written through JournalSink. All
// methods are safe for concurrent use; one journal may span many
// experiments (rows are keyed by table name and global row index).
type Journal struct {
	mu          sync.Mutex
	f           *os.File // nil for a read-only (in-memory) journal
	w           *bufio.Writer
	fingerprint string
	tables      map[string]*journalTable
}

// CreateJournal starts a fresh journal at path and stamps it with the
// scale fingerprint. It refuses to overwrite an existing non-empty
// journal — the likeliest cause is an operator re-running a crashed
// sweep without -resume, and truncating the checkpoint would destroy
// exactly the progress it exists to protect. Resume it, or remove the
// file to genuinely start over.
func CreateJournal(path, fingerprint string) (*Journal, error) {
	if st, err := os.Stat(path); err == nil && st.Size() > 0 {
		return nil, fmt.Errorf("experiments: journal %s already holds records; pass -resume to continue it or remove it to start over", path)
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, w: bufio.NewWriter(f), fingerprint: fingerprint, tables: map[string]*journalTable{}}
	if err := j.writeLine(journalHeaderRecord{Type: "journal", Fingerprint: fingerprint}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal opens the journal at path for a resumed run: completed
// records are loaded (a trailing record left incomplete by a kill is
// discarded and the file truncated back to the last complete line), the
// recorded fingerprint is checked against the resuming scale's, and the
// file is left positioned for appending new rows. A missing file is not
// an error — the resume simply has nothing to skip.
func ResumeJournal(path, fingerprint string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	j := &Journal{f: f, w: bufio.NewWriter(f), fingerprint: fingerprint, tables: map[string]*journalTable{}}
	complete, fresh, err := j.load(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	// Trim a partial trailing record so appended records start on their
	// own line, then position writes at the new end.
	if err := f.Truncate(complete); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(complete, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	if fresh {
		if err := j.writeLine(journalHeaderRecord{Type: "journal", Fingerprint: fingerprint}); err != nil {
			f.Close()
			return nil, err
		}
	}
	return j, nil
}

// load parses every complete record from r, returning the byte offset
// just past the last complete line and whether the journal was empty
// (needs a fresh fingerprint stamp).
func (j *Journal) load(r io.Reader) (complete int64, fresh bool, err error) {
	br := bufio.NewReader(r)
	fresh = true
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			// No trailing newline: the final record was cut mid-write.
			return complete, fresh, nil
		}
		if err != nil {
			return 0, false, err
		}
		if err := j.apply(line); err != nil {
			return 0, false, err
		}
		fresh = false
		complete += int64(len(line))
	}
}

// apply folds one journal line into the in-memory state.
func (j *Journal) apply(line []byte) error {
	var kind struct {
		Type string `json:"type"`
	}
	if err := json.Unmarshal(line, &kind); err != nil {
		return fmt.Errorf("experiments: corrupt journal line %q: %w", line, err)
	}
	switch kind.Type {
	case "journal":
		var h journalHeaderRecord
		if err := json.Unmarshal(line, &h); err != nil {
			return err
		}
		if h.Fingerprint != j.fingerprint {
			return fmt.Errorf("%w: journal has %q, run has %q",
				ErrJournalMismatch, h.Fingerprint, j.fingerprint)
		}
	case "table":
		var t jsonlTableRecord
		if err := json.Unmarshal(line, &t); err != nil {
			return err
		}
		tab := j.table(t.Name)
		tab.header = t.Header
		tab.note = t.Note
	case "metric":
		var m journalMetricRecord
		if err := json.Unmarshal(line, &m); err != nil {
			return err
		}
		j.table(m.Table).metrics[m.Index] = m.Metric
	case "row":
		var r journalRowRecord
		if err := json.Unmarshal(line, &r); err != nil {
			return err
		}
		jr := journalRow{row: r.Row}
		if r.Metric != nil {
			jr.metric, jr.hasMetric = *r.Metric, true
		}
		t := j.table(r.Table)
		t.rows[r.Index] = jr
		if r.Index >= t.next {
			t.next = r.Index + 1
		}
	default:
		return fmt.Errorf("experiments: unknown journal record type %q", kind.Type)
	}
	return nil
}

// table returns (creating if needed) the per-table state. Callers hold
// j.mu or run before any concurrency starts.
func (j *Journal) table(name string) *journalTable {
	t := j.tables[name]
	if t == nil {
		t = &journalTable{rows: map[int]journalRow{}, metrics: map[int]float64{}}
		j.tables[name] = t
	}
	return t
}

// writeLine marshals one record and flushes it to disk, so a kill loses
// at most the record being written.
func (j *Journal) writeLine(v any) error {
	if j.f == nil {
		return nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return j.w.Flush()
}

// replay looks up the completed row at (tableName, index) from the
// loaded journal. Nil-safe on a nil receiver (no journal = no skips).
func (j *Journal) replay(tableName string, index int) (journalRow, bool) {
	if j == nil {
		return journalRow{}, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.tables[tableName]
	if t == nil {
		return journalRow{}, false
	}
	r, ok := t.rows[index]
	return r, ok
}

// replayMetric looks up a checkpointed refinement metric at
// (tableName, index): an owned row's recorded metric, or a metric-only
// record fetched from the exchange by a prior run. Nil-safe.
func (j *Journal) replayMetric(tableName string, index int) (float64, bool) {
	if j == nil {
		return 0, false
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.tables[tableName]
	if t == nil {
		return 0, false
	}
	if r, ok := t.rows[index]; ok && r.hasMetric {
		return r.metric, true
	}
	m, ok := t.metrics[index]
	return m, ok
}

// recordMetric checkpoints a foreign point's refinement metric. Metrics
// already present (from either record kind) are not rewritten.
func (j *Journal) recordMetric(tableName string, index int, metric float64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.table(tableName)
	if r, ok := t.rows[index]; ok && r.hasMetric {
		return nil
	}
	if _, ok := t.metrics[index]; ok {
		return nil
	}
	t.metrics[index] = metric
	return j.writeLine(journalMetricRecord{Type: "metric", Table: tableName, Index: index, Metric: metric})
}

// CompletedRows reports how many rows the journal holds for the named
// table — what a resume will skip.
func (j *Journal) CompletedRows(tableName string) int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.tables[tableName]
	if t == nil {
		return 0
	}
	return len(t.rows)
}

// beginTable records the table identity (header validation on merge and
// resume debugging; replay does not require it).
func (j *Journal) beginTable(meta TableMeta) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if t := j.tables[meta.Name]; t != nil && t.header != nil {
		return nil // resumed table already declared in the prior run
	}
	t := j.table(meta.Name)
	t.header = meta.Header
	t.note = meta.Note
	return j.writeLine(jsonlTableRecord{Type: "table", Name: meta.Name, Note: meta.Note, Header: meta.Header})
}

// record appends one completed row. Rows already present — replays of a
// prior run's work — are not rewritten, so a resumed journal stays
// duplicate-free.
func (j *Journal) record(tableName string, e emitted) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.table(tableName)
	if _, ok := t.rows[e.index]; ok {
		return nil
	}
	jr := journalRow{row: e.row, metric: e.metric, hasMetric: e.hasMetric}
	t.rows[e.index] = jr
	if e.index >= t.next {
		t.next = e.index + 1
	}
	rec := journalRowRecord{Type: "row", Table: tableName, Index: e.index, Row: e.row}
	if e.hasMetric {
		m := e.metric
		rec.Metric = &m
	}
	return j.writeLine(rec)
}

// recordNext appends a row under one past the table's highest recorded
// index, holding the lock across the index choice and the write so
// concurrent direct Row calls cannot collide (and sparse index sets —
// a resumed sharded journal — are never silently overwritten).
func (j *Journal) recordNext(tableName string, row []string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	t := j.table(tableName)
	next := t.next
	t.rows[next] = journalRow{row: row}
	t.next = next + 1
	return j.writeLine(journalRowRecord{Type: "row", Table: tableName, Index: next, Row: row})
}

// Compact rewrites the journal file to exactly its live state — one
// fingerprint stamp, then per table (sorted by name) the table record,
// its rows in index order, and any metric-only checkpoints not
// superseded by a row — dropping everything else: lines trimmed as
// partial on load, duplicate declarations from concatenated journals,
// and superseded metric records. Very long refined sweeps accumulate
// journal lines linearly in completed points; compacting between runs
// bounds what a resume (or a collector replay) must parse.
//
// The rewrite is atomic: records are written to a sibling
// <path>.compact file which is renamed over the journal only once
// complete, so a crash mid-compaction leaves either the original or
// the fully compacted file — never a hybrid — and a resume against
// either yields byte-identical sweep output. A stale .compact file
// from a crashed compaction is simply overwritten next time.
func (j *Journal) Compact() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return errors.New("experiments: compact of a read-only journal")
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	path := j.f.Name()
	tmpPath := path + ".compact"
	tmp, err := os.Create(tmpPath)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(tmp)
	writeRec := func(v any) error {
		b, err := json.Marshal(v)
		if err != nil {
			return err
		}
		_, err = w.Write(append(b, '\n'))
		return err
	}
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpPath)
		return err
	}
	if err := writeRec(journalHeaderRecord{Type: "journal", Fingerprint: j.fingerprint}); err != nil {
		return fail(err)
	}
	names := make([]string, 0, len(j.tables))
	for name := range j.tables {
		names = append(names, name)
	}
	slices.Sort(names)
	for _, name := range names {
		t := j.tables[name]
		if t.header != nil {
			if err := writeRec(jsonlTableRecord{Type: "table", Name: name, Note: t.note, Header: t.header}); err != nil {
				return fail(err)
			}
		}
		idxs := make([]int, 0, len(t.rows))
		for i := range t.rows {
			idxs = append(idxs, i)
		}
		slices.Sort(idxs)
		for _, i := range idxs {
			r := t.rows[i]
			rec := journalRowRecord{Type: "row", Table: name, Index: i, Row: r.row}
			if r.hasMetric {
				m := r.metric
				rec.Metric = &m
			}
			if err := writeRec(rec); err != nil {
				return fail(err)
			}
		}
		midxs := make([]int, 0, len(t.metrics))
		for i := range t.metrics {
			if _, owned := t.rows[i]; owned {
				continue // superseded by the row's own metric
			}
			midxs = append(midxs, i)
		}
		slices.Sort(midxs)
		for _, i := range midxs {
			if err := writeRec(journalMetricRecord{Type: "metric", Table: name, Index: i, Metric: t.metrics[i]}); err != nil {
				return fail(err)
			}
		}
	}
	if err := w.Flush(); err != nil {
		return fail(err)
	}
	if err := tmp.Sync(); err != nil {
		return fail(err)
	}
	if err := tmp.Close(); err != nil {
		return fail(err)
	}
	// The commit point: before the rename a resume reads the original
	// journal, after it the compacted one; both describe the same rows.
	if err := os.Rename(tmpPath, path); err != nil {
		os.Remove(tmpPath)
		return err
	}
	old := j.f
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		// The compacted file is in place but unappendable; surface the
		// error and leave the journal closed for writes.
		old.Close()
		j.f, j.w = nil, nil
		return err
	}
	old.Close()
	j.f = f
	j.w = bufio.NewWriter(f)
	return nil
}

// Close flushes and closes the underlying file.
func (j *Journal) Close() error {
	if j == nil || j.f == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		j.f.Close()
		return err
	}
	return j.f.Close()
}

// JournalSink is the journaling RowSink: every row streamed through it
// is appended to the journal before (conceptually alongside) reaching
// the run's other sinks — compose it with them via MultiSink. Rows the
// engine replayed from the same journal are recognized by key and not
// rewritten.
type JournalSink struct {
	j     *Journal
	table string
}

// NewJournalSink wraps a journal as a RowSink.
func NewJournalSink(j *Journal) *JournalSink {
	return &JournalSink{j: j}
}

// Begin declares the table in the journal.
func (s *JournalSink) Begin(meta TableMeta) error {
	s.table = meta.Name
	return s.j.beginTable(meta)
}

// Row journals a row without engine context, assigning the next unused
// index. The engine path (emitRow) supplies true global indices; this
// variant keeps JournalSink a complete RowSink for direct use.
func (s *JournalSink) Row(row []string) error {
	return s.j.recordNext(s.table, row)
}

// emitRow journals one engine-emitted row under its global index.
func (s *JournalSink) emitRow(e emitted) error {
	return s.j.record(s.table, e)
}

// End flushes the journal (records are flushed per line already).
func (s *JournalSink) End() error {
	if s.j.f == nil {
		return nil
	}
	s.j.mu.Lock()
	defer s.j.mu.Unlock()
	return s.j.w.Flush()
}

package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

func feedSink(t *testing.T, sink RowSink) {
	t.Helper()
	meta := TableMeta{
		Name:   "Test Table",
		Note:   "a note",
		Header: []string{"x", "y"},
	}
	if err := sink.Begin(meta); err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]string{{"1", "a"}, {"2", "b"}} {
		if err := sink.Row(row); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.End(); err != nil {
		t.Fatal(err)
	}
}

func TestTableSink(t *testing.T) {
	var ts TableSink
	feedSink(t, &ts)
	tbl := ts.Table()
	if tbl.Name != "Test Table" || tbl.Note != "a note" {
		t.Errorf("meta = %q / %q", tbl.Name, tbl.Note)
	}
	if len(tbl.Rows) != 2 || tbl.Rows[1][1] != "b" {
		t.Errorf("rows = %v", tbl.Rows)
	}
}

func TestCSVSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSVSink(&buf)
	feedSink(t, sink)
	want := "# Test Table\n# a note\nx,y\n1,a\n2,b\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
	if sink.Rows() != 2 {
		t.Errorf("Rows() = %d, want 2", sink.Rows())
	}

	// A table without a note has a one-line preamble.
	buf.Reset()
	sink = NewCSVSink(&buf)
	if err := sink.Begin(TableMeta{Name: "T", Header: []string{"a"}}); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "# T\na\n"; got != want {
		t.Errorf("CSV preamble = %q, want %q", got, want)
	}
}

func TestJSONLSinkFormat(t *testing.T) {
	var buf bytes.Buffer
	feedSink(t, NewJSONLSink(&buf))
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("JSONL lines = %d, want 3", len(lines))
	}
	var table jsonlTableRecord
	if err := json.Unmarshal(lines[0], &table); err != nil {
		t.Fatal(err)
	}
	if table.Type != "table" || table.Name != "Test Table" || len(table.Header) != 2 {
		t.Errorf("table record = %+v", table)
	}
	for i, line := range lines[1:] {
		var row jsonlRowRecord
		if err := json.Unmarshal(line, &row); err != nil {
			t.Fatal(err)
		}
		if row.Type != "row" || row.Table != "Test Table" || row.Index != i || len(row.Row) != 2 {
			t.Errorf("row record %d = %+v", i, row)
		}
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	var ts TableSink
	var buf bytes.Buffer
	feedSink(t, MultiSink{&ts, NewCSVSink(&buf)})
	if len(ts.Table().Rows) != 2 {
		t.Errorf("table sink rows = %d, want 2", len(ts.Table().Rows))
	}
	if buf.Len() == 0 {
		t.Error("CSV sink saw nothing")
	}
}

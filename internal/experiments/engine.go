package experiments

import (
	"runtime"
	"sync/atomic"

	"streamcache/internal/par"
	"streamcache/internal/sim"
)

// The sweep engine: every figure that is a grid of independent
// simulations (cache fraction x policy x scenario axis) is expressed as
// a slice of rowTasks, one per sweep point, fanned out over a bounded
// worker pool. Tasks are self-contained (each sim.Run derives all of
// its randomness from the config seed via sim.SplitSeed) and their rows
// are collected in task order, so a regenerated table is identical for
// every Parallelism value and any goroutine schedule.

// rowTask computes one row of a table.
type rowTask func() ([]string, error)

// parallelism resolves the effective worker bound of the scale.
// Negative values are rejected by Scale.validate before sweeps run.
func (s Scale) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// simRow builds the common sweep-point task: run one simulation,
// render its metrics as a row. The inner run-level Parallelism is
// pinned to 1 because the sweep pool already saturates the cores (and
// Metrics are identical for any value, so this is purely a scheduling
// choice).
func simRow(cfg sim.Config, render func(sim.Metrics) []string) rowTask {
	return func() ([]string, error) {
		cfg.Parallelism = 1
		m, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		return render(m), nil
	}
}

// runTasks executes tasks over a worker pool bounded by parallelism and
// returns their rows in task order. The first failure (in task order)
// aborts the result, and tasks not yet started when any failure lands
// are skipped, preserving the fail-fast behavior of the old sequential
// sweeps.
func runTasks(parallelism int, tasks []rowTask) ([][]string, error) {
	rows := make([][]string, len(tasks))
	errs := make([]error, len(tasks))
	var failed atomic.Bool
	par.For(parallelism, len(tasks), func(i int) {
		if failed.Load() {
			return
		}
		rows[i], errs[i] = tasks[i]()
		if errs[i] != nil {
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"

	"streamcache/internal/par"
	"streamcache/internal/sim"
)

// The sweep engine: every figure that is a grid of independent
// simulations (cache fraction x policy x scenario axis) is expressed as
// a runner that streams its rows into a RowSink. Fixed grids become a
// slice of rowTasks, one per sweep point, fanned out over a bounded
// worker pool with a reorder buffer (par.ForOrdered) delivering rows in
// task order however workers finish; adaptive sweeps (refine.go) layer
// gradient-driven refinement on top of the same streamed rows. Tasks
// are self-contained (each sim.Run derives all of its randomness from
// the config seed via sim.SplitSeed), so a streamed table is
// byte-identical for every Parallelism value and any goroutine
// schedule.

// rowTask computes one row of a table.
type rowTask func() ([]string, error)

// emitted is one row leaving a runner: the payload plus its global
// index — the row's position in the unsharded deterministic stream,
// the stable key of the sharding and journaling subsystems — and, for
// adaptive sweeps, the refinement metric journaled so a resumed
// refinement ranks intervals on exactly the values a fresh run sees.
type emitted struct {
	index     int
	row       []string
	metric    float64
	hasMetric bool
}

// exec is the execution context of one streamed run: the worker bound,
// the shard of the row space this process owns, the resume journal
// whose completed rows are replayed instead of recomputed, the metric
// exchange resolving foreign refinement metrics, and the write-side
// journal that checkpoints fetched foreign metrics alongside rows.
type exec struct {
	parallelism int
	shard       Shard
	resume      *Journal
	table       string // table name, the journal key prefix
	exchange    MetricExchange
	counters    *Counters
	journal     *Journal // write side (nil when the run is unjournaled)
}

// replay looks up a completed row for the global index in the resume
// journal (nil-safe: no journal, no replays).
func (x exec) replay(index int) (journalRow, bool) {
	return x.resume.replay(x.table, index)
}

// replayMetric looks up a checkpointed metric (row or metric record)
// for the global index in the resume journal.
func (x exec) replayMetric(index int) (float64, bool) {
	return x.resume.replayMetric(x.table, index)
}

// evaluated counts one locally simulated sweep point.
func (x exec) evaluated() {
	if x.counters != nil {
		x.counters.Evaluations.Add(1)
	}
}

// foreignMetric resolves the refinement metric of a point owned by
// another shard without simulating it: first the resume journal (a
// prior run already fetched or computed it), then the exchange. A hit
// from the exchange is checkpointed so a crash-resume does not depend
// on the collector still being reachable.
func (x exec) foreignMetric(index int) (float64, bool) {
	if m, ok := x.replayMetric(index); ok {
		return m, true
	}
	if x.exchange == nil {
		return 0, false
	}
	m, ok := x.exchange.ForeignMetric(x.table, index)
	if !ok {
		return 0, false
	}
	if x.counters != nil {
		x.counters.ExchangeHits.Add(1)
	}
	if x.journal != nil {
		// Best-effort checkpoint: a write failure surfaces on the row
		// path, not here (the metric is already in hand).
		_ = x.journal.recordMetric(x.table, index, m)
	}
	return m, true
}

// runner produces one experiment's rows, streaming them through emit in
// deterministic order.
type runner interface {
	tableMeta() TableMeta
	run(x exec, emit func(e emitted) error) error
}

// parallelism resolves the effective worker bound of the scale.
// Negative values are rejected by Scale.validate before sweeps run.
func (s Scale) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// newArena builds the experiment-wide memoization arena (nil when the
// scale opts out of reuse). A caller-supplied s.Arena takes priority so
// one arena can span every experiment of a figure set.
func (s Scale) newArena() *sim.Arena {
	if s.NoWorkloadReuse {
		return nil
	}
	if s.Arena != nil {
		return s.Arena
	}
	return sim.NewArena()
}

// simRow builds the common sweep-point task: run one simulation,
// render its metrics as a row. The inner run-level Parallelism is
// pinned to 1 because the sweep pool already saturates the cores (and
// Metrics are identical for any value, so this is purely a scheduling
// choice). The arena is shared by every task of one experiment, so
// sweep points reuse identical workloads and path assignments instead
// of regenerating them (nil disables reuse; rows are byte-identical
// either way).
func simRow(arena *sim.Arena, cfg sim.Config, render func(sim.Metrics) []string) rowTask {
	return func() ([]string, error) {
		cfg.Parallelism = 1
		cfg.Arena = arena
		m, err := sim.Run(cfg)
		if err != nil {
			return nil, err
		}
		return render(m), nil
	}
}

// taskSweep is a fixed grid of independent sweep points.
type taskSweep struct {
	meta  TableMeta
	tasks []rowTask
}

func (t *taskSweep) tableMeta() TableMeta { return t.meta }

// run executes the shard-owned subset of the grid over the worker pool,
// replaying journaled rows instead of recomputing them, and emits rows
// in ascending global-index order.
func (t *taskSweep) run(x exec, emit func(e emitted) error) error {
	owned := x.shard.indices(len(t.tasks))
	return streamOrdered(x.parallelism, len(owned), func(j int) (emitted, error) {
		g := owned[j]
		if r, ok := x.replay(g); ok {
			return emitted{index: g, row: r.row}, nil
		}
		x.evaluated()
		row, err := t.tasks[g]()
		return emitted{index: g, row: row}, err
	}, func(_ int, e emitted) error { return emit(e) })
}

// staticTable is a runner whose rows were computed eagerly (the
// workload- and trace-characterization tables); it streams them
// unchanged.
type staticTable struct {
	meta TableMeta
	rows [][]string
}

func (t *staticTable) tableMeta() TableMeta { return t.meta }

// run emits the shard-owned subset of the precomputed rows. The rows
// were already materialized by the builder, so sharding a static table
// splits only its output, not its (cheap) computation.
func (t *staticTable) run(x exec, emit func(e emitted) error) error {
	for i, row := range t.rows {
		if !x.shard.owns(i) {
			continue
		}
		if err := emit(emitted{index: i, row: row}); err != nil {
			return err
		}
	}
	return nil
}

// errSweepAborted marks tasks skipped because an earlier task failed.
// It is internal flow control only: streamOrdered reports the first
// real failure in task order, never the sentinel.
var errSweepAborted = errors.New("experiments: sweep aborted")

// streamOrdered runs eval(0..n-1) over a worker pool bounded by
// parallelism and hands results to deliver in strict index order as
// they become available. The first failure (in task order) aborts the
// stream, and tasks not yet started when any failure lands are
// skipped, preserving the fail-fast behavior of the old
// collect-then-return sweeps. Results delivered before the first
// failing index stay delivered: streaming consumers own partial
// output (under a failure the delivered prefix may end before the
// failing index, since a skipped task yields nothing to deliver).
func streamOrdered[T any](parallelism, n int, eval func(i int) (T, error), deliver func(i int, v T) error) error {
	type result struct {
		v   T
		err error
	}
	var failed atomic.Bool
	var deliverErr error
	// Real task errors land in index-addressed slots so the reported
	// error is the first in task order — a skipped lower-index task
	// (sentinel) must not mask the failure that caused the skip.
	errs := make([]error, n)
	par.ForOrdered(parallelism, n, func(i int) result {
		if failed.Load() {
			return result{err: errSweepAborted}
		}
		v, err := eval(i)
		if err != nil {
			errs[i] = err
			failed.Store(true)
		}
		return result{v: v, err: err}
	}, func(i int, r result) bool {
		if r.err != nil {
			return false
		}
		if err := deliver(i, r.v); err != nil {
			failed.Store(true)
			deliverErr = err
			return false
		}
		return true
	})
	// A deliver failure is what actually cut the stream short; tasks
	// can only have failed at higher indices (every task at or below
	// the delivered prefix succeeded), so it takes precedence.
	if deliverErr != nil {
		return deliverErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// streamTasks executes tasks over the pool and emits their rows in
// task order (the unsharded, journal-free fast path kept for tests).
func streamTasks(parallelism int, tasks []rowTask, emit func(row []string) error) error {
	return streamOrdered(parallelism, len(tasks),
		func(i int) ([]string, error) { return tasks[i]() },
		func(_ int, row []string) error { return emit(row) })
}

// stream drives one runner into a sink: Begin, ordered rows, End. Rows
// reach the sink through sinkEmit, so index-aware sinks (JSONL,
// journal) observe each row's global index.
func stream(s Scale, r runner, sink RowSink) error {
	meta := r.tableMeta()
	if err := sink.Begin(meta); err != nil {
		return err
	}
	x := exec{
		parallelism: s.parallelism(),
		shard:       s.Shard,
		resume:      s.Resume,
		table:       meta.Name,
		exchange:    s.Exchange,
		counters:    s.Counters,
		journal:     findJournal(sink),
	}
	if err := r.run(x, func(e emitted) error { return sinkEmit(sink, e) }); err != nil {
		return err
	}
	return sink.End()
}

// findJournal locates the checkpoint journal inside a (possibly nested)
// sink fan-out, so the engine can record fetched foreign metrics next
// to the rows the JournalSink already checkpoints.
func findJournal(sink RowSink) *Journal {
	switch t := sink.(type) {
	case *JournalSink:
		return t.j
	case MultiSink:
		for _, s := range t {
			if j := findJournal(s); j != nil {
				return j
			}
		}
	}
	return nil
}

// tableOf materializes a runner builder into the in-memory Table of the
// aggregate API.
func tableOf(s Scale, build func(Scale) (runner, error)) (*Table, error) {
	r, err := build(s)
	if err != nil {
		return nil, err
	}
	var ts TableSink
	if err := stream(s, r, &ts); err != nil {
		return nil, err
	}
	return ts.Table(), nil
}

// Experiment is one named, streamable table of the evaluation suite.
type Experiment struct {
	// Key is the stable short name used by cmd/figures -only and
	// ExperimentByKey.
	Key   string
	build func(Scale) (runner, error)
}

// Table runs the experiment at the given scale and returns the
// aggregated in-memory table.
func (e Experiment) Table(s Scale) (*Table, error) {
	return tableOf(s, e.build)
}

// Stream runs the experiment at the given scale, pushing rows into sink
// incrementally in deterministic order. The streamed bytes of a
// deterministic sink (CSV, JSONL) are identical for every Parallelism.
func (e Experiment) Stream(s Scale, sink RowSink) error {
	r, err := e.build(s)
	if err != nil {
		return err
	}
	return stream(s, r, sink)
}

// Experiments returns the full suite in paper order: Table 1 and
// Figures 2-12, then the ablations, the Section 6 extensions, the
// scenario matrix, and the adaptively refined axis sweeps.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", table1Runner},
		{"figure2", figure2Runner},
		{"figure3", figure3Runner},
		{"figure4", figure4Runner},
		{"figure5", figure5Runner},
		{"figure6", figure6Runner},
		{"figure7", figure7Runner},
		{"figure8", figure8Runner},
		{"figure9", figure9Runner},
		{"figure10", figure10Runner},
		{"figure11", figure11Runner},
		{"figure12", figure12Runner},
		{"ablation-eviction", ablationEvictionRunner},
		{"ablation-estimators", ablationEstimatorsRunner},
		{"ext-merging", extensionStreamMergingRunner},
		{"ext-partial-viewing", extensionPartialViewingRunner},
		{"ext-active-probing", extensionActiveProbingRunner},
		{"ext-baselines", extensionBaselinesRunner},
		{"scenarios", scenarioMatrixRunner},
		{"refined-e", refinedESweepRunner},
		{"refined-sigma", refinedSigmaSweepRunner},
		{"refined-cache", refinedCacheSweepRunner},
		{"refined-esigma", refinedESigmaSweepRunner},
		{"hierarchy", hierarchyRunner},
	}
}

// ExperimentByKey looks an experiment up by its stable key.
func ExperimentByKey(key string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.Key == key {
			return e, true
		}
	}
	return Experiment{}, false
}

// Stream runs the experiment named by key at the given scale into sink.
func Stream(key string, s Scale, sink RowSink) error {
	e, ok := ExperimentByKey(key)
	if !ok {
		return fmt.Errorf("experiments: unknown experiment %q", key)
	}
	return e.Stream(s, sink)
}

package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
	"time"
)

// memStore is an in-memory MetricExchange shared by concurrently
// running test shards: each shard publishes its owned metrics through a
// memSink and resolves foreign ones here, exactly the collector's
// contract without the HTTP transport.
type memStore struct {
	mu   sync.Mutex
	vals map[string]map[int]float64
	fail bool // simulate an unreachable collector
}

func newMemStore() *memStore {
	return &memStore{vals: map[string]map[int]float64{}}
}

func (s *memStore) publish(table string, index int, m float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.vals[table]
	if t == nil {
		t = map[int]float64{}
		s.vals[table] = t
	}
	t[index] = m
}

func (s *memStore) lookup(table string, index int) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.vals[table][index]
	return m, ok
}

func (s *memStore) ForeignMetric(table string, index int) (float64, bool) {
	if s.fail {
		return 0, false
	}
	// Poll with a generous deadline: the owning shard runs concurrently
	// and publishes as its round progresses.
	deadline := time.Now().Add(20 * time.Second)
	for {
		if m, ok := s.lookup(table, index); ok {
			return m, true
		}
		if time.Now().After(deadline) {
			return 0, false
		}
		time.Sleep(time.Millisecond)
	}
}

// memSink feeds a shard's emitted metrics into the shared store.
type memSink struct {
	st    *memStore
	table string
}

func (m *memSink) Begin(meta TableMeta) error { m.table = meta.Name; return nil }
func (m *memSink) Row([]string) error         { return nil }
func (m *memSink) End() error                 { return nil }
func (m *memSink) MetricRow(mr MetricRow) error {
	if mr.HasMetric {
		m.st.publish(m.table, mr.Index, mr.Metric)
	}
	return nil
}

// runShardsWithExchange streams key on count concurrent shards sharing
// one exchange, returning each shard's JSONL bytes and evaluation
// counts.
func runShardsWithExchange(t *testing.T, key string, base Scale, count, par int,
	st *memStore) ([][]byte, []int64) {
	t.Helper()
	outs := make([][]byte, count)
	evals := make([]int64, count)
	errs := make([]error, count)
	var wg sync.WaitGroup
	for idx := 0; idx < count; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s := base
			s.Shard = Shard{Index: idx, Count: count}
			s.Parallelism = par
			s.Exchange = st
			s.Counters = &Counters{}
			var buf bytes.Buffer
			sink := MultiSink{NewJSONLSink(&buf), &memSink{st: st}}
			errs[idx] = Stream(key, s, sink)
			outs[idx] = buf.Bytes()
			evals[idx] = s.Counters.Evaluations.Load()
		}(idx)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			t.Fatalf("shard %d/%d: %v", idx, count, err)
		}
	}
	return outs, evals
}

// TestShardedRefinementExchangeByteIdentical is the shard-aware
// scheduling acceptance contract: with a healthy exchange, concurrent
// shards split the refinement evaluation — each shard simulates exactly
// its owned points, the global evaluation count equals the unsharded
// run's, and the merged union stays byte-identical to the unsharded
// stream — for the 1-D and the 2-D adaptive sweeps at ShardCount
// {1, 2, 5} x Parallelism {1, 8}.
func TestShardedRefinementExchangeByteIdentical(t *testing.T) {
	for _, key := range []string{"refined-e", "refined-esigma"} {
		t.Run(key, func(t *testing.T) {
			base := tinyScale()
			base.RefineBudget = 3
			base.Counters = &Counters{}
			var wantCSV, wantJSONL bytes.Buffer
			if err := Stream(key, base, MultiSink{NewCSVSink(&wantCSV), NewJSONLSink(&wantJSONL)}); err != nil {
				t.Fatal(err)
			}
			totalEvals := base.Counters.Evaluations.Load()
			totalRows := int(totalEvals) // unsharded: every point is one evaluation

			for _, count := range []int{1, 2, 5} {
				for _, par := range []int{1, 8} {
					t.Run(fmt.Sprintf("count%d_par%d", count, par), func(t *testing.T) {
						st := newMemStore()
						s := tinyScale()
						s.RefineBudget = 3
						outs, evals := runShardsWithExchange(t, key, s, count, par, st)

						var sum int64
						for idx, n := range evals {
							want := int64(len(Shard{Index: idx, Count: count}.indices(totalRows)))
							if n != want {
								t.Errorf("shard %d/%d simulated %d points, want exactly its %d owned",
									idx, count, n, want)
							}
							sum += n
						}
						if sum != totalEvals {
							t.Errorf("global evaluations %d, want %d (each point simulated exactly once)",
								sum, totalEvals)
						}

						parts := make([]io.Reader, count)
						for i, b := range outs {
							parts[i] = bytes.NewReader(b)
						}
						var gotCSV, gotJSONL bytes.Buffer
						if err := MergeShards(parts, MultiSink{NewCSVSink(&gotCSV), NewJSONLSink(&gotJSONL)}); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
							t.Errorf("merged CSV differs from unsharded stream:\n%s\nwant:\n%s",
								gotCSV.String(), wantCSV.String())
						}
						if !bytes.Equal(gotJSONL.Bytes(), wantJSONL.Bytes()) {
							t.Errorf("merged JSONL differs from unsharded stream")
						}
					})
				}
			}
		})
	}
}

// TestExchangeUnavailableFallsBackLocally pins the failure contract: an
// exchange that cannot produce any metric (collector down) degrades to
// the PR 4 behavior — every shard evaluates the full point set — and
// the union is still byte-identical.
func TestExchangeUnavailableFallsBackLocally(t *testing.T) {
	key := "refined-e"
	base := tinyScale()
	base.RefineBudget = 3
	base.Counters = &Counters{}
	var want bytes.Buffer
	if err := Stream(key, base, NewJSONLSink(&want)); err != nil {
		t.Fatal(err)
	}
	totalEvals := base.Counters.Evaluations.Load()

	st := newMemStore()
	st.fail = true
	s := tinyScale()
	s.RefineBudget = 3
	outs, evals := runShardsWithExchange(t, key, s, 2, 2, st)
	for idx, n := range evals {
		if n != totalEvals {
			t.Errorf("shard %d with dead exchange simulated %d points, want the full %d", idx, n, totalEvals)
		}
	}
	parts := make([]io.Reader, len(outs))
	for i, b := range outs {
		parts[i] = bytes.NewReader(b)
	}
	var got bytes.Buffer
	if err := MergeShards(parts, NewJSONLSink(&got)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Error("dead-exchange merged stream differs from unsharded stream")
	}
}

// TestRefined2DDeterministicAcrossParallelism pins the 2-D driver's
// half of the Parallelism contract directly.
func TestRefined2DDeterministicAcrossParallelism(t *testing.T) {
	s := tinyScale()
	s.RefineBudget = 4
	var want bytes.Buffer
	s.Parallelism = 1
	if err := Stream("refined-esigma", s, NewCSVSink(&want)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(want.Bytes(), []byte(",refined")) {
		t.Fatal("budget 4 produced no refined rows")
	}
	for _, par := range []int{2, 8} {
		var got bytes.Buffer
		s.Parallelism = par
		if err := Stream("refined-esigma", s, NewCSVSink(&got)); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Errorf("parallelism %d changed the 2-D refined stream", par)
		}
	}
}

// TestRefined2DCellSpreadScoring pins the quadtree scoring unit: the
// spread of a cell is the metric range over samples on its closed
// bounds, and center() bisects exactly.
func TestRefined2DCellSpreadScoring(t *testing.T) {
	samples := []sample2d{
		{0, 0, 1}, {1, 0, 5}, {0, 1, 2}, {1, 1, 3}, // corners
		{2, 2, 100}, // outside
	}
	c := cell2d{0, 1, 0, 1}
	if got := c.spread(samples); got != 4 {
		t.Errorf("spread = %v, want 4", got)
	}
	cx, cy := c.center()
	if cx != 0.5 || cy != 0.5 {
		t.Errorf("center = (%v,%v), want (0.5,0.5)", cx, cy)
	}
	// A sample on the boundary counts for both adjacent cells.
	left, right := cell2d{0, 0.5, 0, 1}, cell2d{0.5, 1, 0, 1}
	boundary := []sample2d{{0.5, 0.5, 10}, {0, 0, 4}, {1, 0, 7}}
	if got := left.spread(boundary); got != 6 {
		t.Errorf("left spread = %v, want 6", got)
	}
	if got := right.spread(boundary); got != 3 {
		t.Errorf("right spread = %v, want 3", got)
	}
}

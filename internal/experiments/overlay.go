package experiments

import (
	"fmt"
	"strings"
)

// OverlayTables joins a live measurement table (a loadgen capacity or
// summary CSV) with the matching simulator sweep into one plottable
// table: the columns the two share by name, in the live table's order,
// with a leading "source" column tagging each row "live" or "sim".
// Plotting the overlay CSV directly answers the cross-validation
// question — do the live proxy's measured curves track the simulator's
// predictions over the shared axes — without hand-aligning two files.
//
// Only shared columns survive the join; columns unique to either side
// are dropped (they have no counterpart to overlay against). Joining
// tables with no shared column names is an error, not an empty table.
func OverlayTables(live, sim *Table) (*Table, error) {
	simCol := map[string]int{}
	for i, h := range sim.Header {
		if _, dup := simCol[h]; !dup {
			simCol[h] = i
		}
	}
	type pair struct{ liveIdx, simIdx int }
	shared := []string{}
	cols := []pair{}
	for i, h := range live.Header {
		if j, ok := simCol[h]; ok {
			shared = append(shared, h)
			cols = append(cols, pair{liveIdx: i, simIdx: j})
		}
	}
	if len(shared) == 0 {
		return nil, fmt.Errorf("experiments: overlay: no shared columns between live (%s) and sim (%s)",
			strings.Join(live.Header, ","), strings.Join(sim.Header, ","))
	}

	out := &Table{
		Name:   "live-vs-sim overlay",
		Note:   fmt.Sprintf("shared columns of %q (live) and %q (sim); source tags each row", live.Name, sim.Name),
		Header: append([]string{"source"}, shared...),
	}
	project := func(source string, rows [][]string, idx func(pair) int) {
		for _, row := range rows {
			outRow := make([]string, 0, len(shared)+1)
			outRow = append(outRow, source)
			for _, c := range cols {
				i := idx(c)
				if i < len(row) {
					outRow = append(outRow, row[i])
				} else {
					outRow = append(outRow, "")
				}
			}
			out.Rows = append(out.Rows, outRow)
		}
	}
	project("live", live.Rows, func(c pair) int { return c.liveIdx })
	project("sim", sim.Rows, func(c pair) int { return c.simIdx })
	return out, nil
}

package experiments

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The live-capacity row schemas: the open-loop load engine
// (internal/load) emits its ramp-sweep results in these shapes so the
// figures tooling can plot goodput vs offered load and locate the SLO
// knee with the same machinery that renders simulator tables.

// LiveCapacityHeader is the per-ramp-level summary schema. One row per
// level; offered_rps is monotone in a well-formed ramp, and the knee is
// the first level where slo_violation_frac crosses the operator's
// threshold.
var LiveCapacityHeader = []string{
	"level", "rate_scale", "time_scale",
	"offered_rps", "achieved_rps", "goodput_rps", "goodput_kbps",
	"issued", "completed", "shed", "failed",
	"slo_violation_frac",
	"delay_p50_ms", "delay_p90_ms", "delay_p99_ms",
	"prefix_hit_ratio", "bw_hit_ratio", "wall_seconds",
}

// LiveClassHeader is the per-(level, class) breakdown schema.
var LiveClassHeader = []string{
	"level", "class", "slo_ms",
	"offered_rps", "achieved_rps",
	"issued", "completed", "shed", "failed",
	"slo_violation_frac",
	"delay_p50_ms", "delay_p90_ms", "delay_p99_ms",
}

// LiveCapacityMeta builds the summary table identity for one ramp sweep.
func LiveCapacityMeta(note string) TableMeta {
	return TableMeta{Name: "live-capacity", Note: note, Header: LiveCapacityHeader}
}

// LiveClassMeta builds the per-class table identity for one ramp sweep.
func LiveClassMeta(note string) TableMeta {
	return TableMeta{Name: "live-capacity-classes", Note: note, Header: LiveClassHeader}
}

// FindKnee locates the SLO knee in a live-capacity table: the index of
// the first row whose slo_violation_frac strictly exceeds threshold.
// Returns -1 when no row crosses (the sweep never saturated the proxy)
// or when the table lacks the needed columns.
func FindKnee(t *Table, threshold float64) int {
	col := -1
	for i, h := range t.Header {
		if h == "slo_violation_frac" {
			col = i
		}
	}
	if col < 0 {
		return -1
	}
	for i, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		v, err := strconv.ParseFloat(row[col], 64)
		if err != nil {
			continue
		}
		if v > threshold {
			return i
		}
	}
	return -1
}

// ReadCSVTable parses a table in the CSVSink rendering: a `# name`
// comment line, an optional `# note` line, the comma-joined header,
// then one comma-joined line per row. This is the inverse of streaming
// a table through NewCSVSink, used by tooling (cmd/figures -knee) that
// consumes live-capacity output.
func ReadCSVTable(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	t := &Table{}
	sawHeader := false
	for sc.Scan() {
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# ") {
			if t.Name == "" {
				t.Name = strings.TrimPrefix(line, "# ")
			} else if t.Note == "" && !sawHeader {
				t.Note = strings.TrimPrefix(line, "# ")
			}
			continue
		}
		cells := strings.Split(line, ",")
		if !sawHeader {
			t.Header = cells
			sawHeader = true
			continue
		}
		t.Rows = append(t.Rows, cells)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("experiments: read csv table: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("experiments: read csv table: no header line")
	}
	return t, nil
}

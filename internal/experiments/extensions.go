package experiments

import (
	"math/rand"
	"sort"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/merge"
	"streamcache/internal/sim"
	"streamcache/internal/units"
	"streamcache/internal/workload"
)

// ExtensionStreamMerging evaluates the Section 6 direction of combining
// partial caching with patching and batching at the proxy: for the
// Table 1 request trace it compares origin traffic under plain unicast,
// batching (30 s window), threshold patching (analytic optimum T* per
// object), and patching on top of PB's cached prefixes.
func ExtensionStreamMerging(s Scale) (*Table, error) { return tableOf(s, extensionStreamMergingRunner) }

func extensionStreamMergingRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	w, _, err := s.newArena().Workload(workload.Config{
		NumObjects:  s.Objects,
		NumRequests: s.Requests,
		Seed:        s.Seed,
	})
	if err != nil {
		return nil, err
	}
	times := make([]float64, len(w.Requests))
	ids := make([]int, len(w.Requests))
	for i, r := range w.Requests {
		times[i] = r.Time
		ids[i] = r.ObjectID
	}
	byObject, err := merge.SplitByObject(times, ids)
	if err != nil {
		return nil, err
	}

	// PB's cached prefix for each object under the oracle-mean bandwidth
	// (Section 2.3 deficits), limited to the usual 5%-of-total cache via
	// the optimal placement.
	lambda := make([]float64, len(w.Objects))
	bw := make([]float64, len(w.Objects))
	counts := w.RequestCounts()
	netRNG := rand.New(rand.NewSource(s.Seed))
	model := bandwidth.NLANR()
	objs := make([]core.Object, len(w.Objects))
	for i, o := range w.Objects {
		objs[i] = core.Object{ID: o.ID, Size: o.Size, Duration: o.Duration, Rate: o.Rate, Value: o.Value}
		lambda[i] = float64(counts[i])
		bw[i] = model.Sample(netRNG)
	}
	cacheBytes := w.TotalUniqueBytes() / 20
	placement, err := core.OptimalPlacement(objs, lambda, bw, cacheBytes)
	if err != nil {
		return nil, err
	}

	span := w.Span()
	type agg struct {
		origin float64
		delay  float64
	}
	totals := map[string]*agg{
		"unicast": {}, "batch_30s": {}, "patching": {}, "patching+PB_cache": {},
	}
	var unicastBytes float64
	// Iterate objects in sorted-ID order: the per-technique totals are
	// float sums, and float addition order must not depend on map
	// iteration order or reruns drift in the low bits.
	objIDs := make([]int, 0, len(byObject))
	for id := range byObject {
		objIDs = append(objIDs, id)
	}
	sort.Ints(objIDs)
	for _, id := range objIDs {
		ts := byObject[id]
		o := w.Objects[id]
		obj := merge.Object{Size: o.Size, Rate: o.Rate}
		uni, err := merge.Unicast(ts, obj)
		if err != nil {
			return nil, err
		}
		totals["unicast"].origin += uni.OriginBytes
		unicastBytes += uni.UnicastBytes(obj)

		bat, err := merge.Batch(ts, obj, 30)
		if err != nil {
			return nil, err
		}
		totals["batch_30s"].origin += bat.OriginBytes
		totals["batch_30s"].delay += bat.AvgAddedDelay * float64(len(ts))

		objLambda := float64(len(ts)) / span
		tStar, err := merge.OptimalPatchThreshold(objLambda, obj)
		if err != nil {
			return nil, err
		}
		pat, err := merge.Patch(ts, obj, tStar, 0)
		if err != nil {
			return nil, err
		}
		totals["patching"].origin += pat.OriginBytes

		patCached, err := merge.Patch(ts, obj, tStar, placement[id])
		if err != nil {
			return nil, err
		}
		totals["patching+PB_cache"].origin += patCached.OriginBytes
	}

	t := &staticTable{meta: TableMeta{
		Name:   "Extension: stream merging (batching/patching) composed with partial caching",
		Note:   "Section 6 future work; PB prefixes sized by the Section 2.3 optimum at 5% cache",
		Header: []string{"technique", "origin_GB", "savings_vs_unicast", "avg_added_delay_s"},
	}}
	for _, key := range []string{"unicast", "batch_30s", "patching", "patching+PB_cache"} {
		a := totals[key]
		delay := 0.0
		if key == "batch_30s" && len(w.Requests) > 0 {
			delay = a.delay / float64(len(w.Requests))
		}
		t.rows = append(t.rows, []string{
			key,
			f1(float64(a.origin) / float64(units.GB)),
			f3(1 - a.origin/unicastBytes),
			f1(delay),
		})
	}
	return t, nil
}

// ExtensionPartialViewing measures how GISMO-style partial-viewing
// sessions (clients stopping early) change the traffic economics of
// prefix caching.
func ExtensionPartialViewing(s Scale) (*Table, error) {
	return tableOf(s, extensionPartialViewingRunner)
}

func extensionPartialViewingRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Extension: partial-viewing sessions (GISMO user interactivity)",
		Note:   "prefix caching gains relative effectiveness when sessions only watch the head of the stream",
		Header: []string{"partial_view_prob", "policy", "traffic_reduction", "avg_delay_s", "hit_ratio"},
	}}
	for _, prob := range []float64{0, 0.3, 0.7} {
		for _, p := range []core.Policy{core.NewIF(), core.NewPB()} {
			sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
				Workload: workload.Config{
					NumObjects:      s.Objects,
					NumRequests:     s.Requests,
					PartialViewProb: prob,
				},
				CacheBytes: int64(0.05 * float64(total)),
				Policy:     p,
				Runs:       s.Runs,
				Seed:       s.Seed,
			}, func(m sim.Metrics) []string {
				return []string{
					f3(prob), p.Name(),
					f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.HitRatio),
				}
			}))
		}
	}
	return sw, nil
}

// ExtensionBaselines positions the paper's network-aware policies
// against the classical replacement algorithms Section 3.3 names (LRU,
// LFU) and the GreedyDual-Size family of the authors' earlier work [17],
// under measured-path variability.
func ExtensionBaselines(s Scale) (*Table, error) { return tableOf(s, extensionBaselinesRunner) }

func extensionBaselinesRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Extension: classical baselines (LRU/LFU/GreedyDual-Size) vs network-aware policies",
		Note:   "measured-path variability, 5% cache; GDS-family policies are stateful and built per run",
		Header: []string{"policy", "traffic_reduction", "avg_delay_s", "avg_quality", "hit_ratio"},
	}}
	factories := []struct {
		label string
		make  func() core.Policy
	}{
		{"LRU", core.NewLRU},
		{"LFU", core.NewLFU},
		{"GDS", core.NewGDS},
		{"GDS-BW", core.NewGDSBandwidth},
		{"GDSP-BW", core.NewGDSP},
		{"IB", core.NewIB},
		{"PB", core.NewPB},
	}
	for _, f := range factories {
		sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
			Workload:      s.workload(),
			CacheBytes:    int64(0.05 * float64(total)),
			PolicyFactory: f.make,
			Variation:     bandwidth.MeasuredVariability(),
			Runs:          s.Runs,
			Seed:          s.Seed,
		}, func(m sim.Metrics) []string {
			return []string{
				f.label, f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay),
				f3(m.AvgStreamQuality), f3(m.HitRatio),
			}
		}))
	}
	return sw, nil
}

// ExtensionActiveProbing compares the oracle estimator with the active
// Padhye-model prober at increasing measurement noise (Section 6:
// integrating active bandwidth measurement into proxy caches).
func ExtensionActiveProbing(s Scale) (*Table, error) { return tableOf(s, extensionActiveProbingRunner) }

func extensionActiveProbingRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Extension: active bandwidth probing (Padhye model) vs oracle estimation",
		Note:   "PB policy under measured-path variability, 5% cache",
		Header: []string{"estimator", "traffic_reduction", "avg_delay_s", "avg_quality"},
	}}
	estimators := []struct {
		label   string
		factory sim.EstimatorFactory
	}{
		{"oracle", sim.OracleEstimator},
		{"active_probe_jitter_0.05", sim.ActiveProbeEstimator(0.05)},
		{"active_probe_jitter_0.20", sim.ActiveProbeEstimator(0.20)},
		{"active_probe_jitter_0.40", sim.ActiveProbeEstimator(0.40)},
	}
	for _, est := range estimators {
		sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
			Workload:   s.workload(),
			CacheBytes: int64(0.05 * float64(total)),
			Policy:     core.NewPB(),
			Variation:  bandwidth.MeasuredVariability(),
			Estimators: est.factory,
			Runs:       s.Runs,
			Seed:       s.Seed,
		}, func(m sim.Metrics) []string {
			return []string{
				est.label, f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
			}
		}))
	}
	return sw, nil
}

package experiments

import (
	"fmt"
	"strconv"
	"strings"
)

// Sharded execution: a sweep's rows carry stable global indices (their
// position in the unsharded deterministic stream), and a Shard selects
// the subset of indices one process computes. Round-robin assignment
// (index mod Count) keeps every shard's load balanced across the grid's
// slow and fast regions, and because assignment is a pure function of
// the index, the union of the shards' outputs is bit-identical to the
// unsharded stream for any Shard.Count — the multi-process analogue of
// the Parallelism guarantee. MergeShards reassembles the union.

// Shard identifies one of Count cooperating sweep processes. The zero
// value (and Count <= 1) means unsharded: this process owns every row.
// Index is zero-based.
type Shard struct {
	Index int
	Count int
}

// enabled reports whether sharding partitions the row space at all.
func (sh Shard) enabled() bool { return sh.Count > 1 }

// owns reports whether this shard computes the row at the given global
// index.
func (sh Shard) owns(index int) bool {
	return !sh.enabled() || index%sh.Count == sh.Index
}

// indices returns the ascending global indices of the rows this shard
// owns out of n total.
func (sh Shard) indices(n int) []int {
	if !sh.enabled() {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return all
	}
	owned := make([]int, 0, n/sh.Count+1)
	for i := sh.Index; i < n; i += sh.Count {
		owned = append(owned, i)
	}
	return owned
}

func (sh Shard) validate() error {
	if sh.Count < 0 || sh.Index < 0 {
		return fmt.Errorf("%w: shard %d/%d", ErrBadScale, sh.Index, sh.Count)
	}
	if sh.Count > 0 && sh.Index >= sh.Count {
		return fmt.Errorf("%w: shard index %d outside 0..%d", ErrBadScale, sh.Index, sh.Count-1)
	}
	return nil
}

// String renders the shard in the CLI's "index/count" form.
func (sh Shard) String() string {
	if !sh.enabled() {
		return "0/1"
	}
	return fmt.Sprintf("%d/%d", sh.Index, sh.Count)
}

// ParseShard parses the "-shard index/count" CLI form (zero-based
// index, e.g. "0/2" and "1/2" for a two-way split). The empty string
// means unsharded.
func ParseShard(s string) (Shard, error) {
	if s == "" {
		return Shard{}, nil
	}
	idxStr, cntStr, ok := strings.Cut(s, "/")
	if !ok {
		return Shard{}, fmt.Errorf("experiments: shard %q not in index/count form", s)
	}
	idx, err := strconv.Atoi(strings.TrimSpace(idxStr))
	if err != nil {
		return Shard{}, fmt.Errorf("experiments: bad shard index in %q: %w", s, err)
	}
	cnt, err := strconv.Atoi(strings.TrimSpace(cntStr))
	if err != nil {
		return Shard{}, fmt.Errorf("experiments: bad shard count in %q: %w", s, err)
	}
	sh := Shard{Index: idx, Count: cnt}
	if cnt < 1 {
		return Shard{}, fmt.Errorf("experiments: shard count %d < 1 in %q", cnt, s)
	}
	if err := sh.validate(); err != nil {
		return Shard{}, err
	}
	return sh, nil
}

package experiments

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"slices"
)

// MergeShards reassembles one experiment's canonical row stream from
// the per-shard JSONL outputs (or journals) of a sharded sweep. Each
// part must describe the same table; rows are keyed by their global
// index. The merge validates the union — duplicate indices (two shards
// claiming one row) and gaps (a shard's output missing or incomplete)
// are errors, so a merged table is guaranteed to be exactly the
// unsharded stream — and then replays it through sink in index order,
// making the merged CSV/JSONL byte-identical to a single-process run.
func MergeShards(parts []io.Reader, sink RowSink) error {
	if len(parts) == 0 {
		return fmt.Errorf("experiments: merge of zero shard outputs")
	}
	var (
		meta    TableMeta
		haveTab bool
		rows    = map[int]journalRow{}
	)
	for p, part := range parts {
		sc := bufio.NewScanner(part)
		sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var kind struct {
				Type string `json:"type"`
			}
			if err := json.Unmarshal(line, &kind); err != nil {
				return fmt.Errorf("experiments: shard %d: corrupt record %q: %w", p, line, err)
			}
			switch kind.Type {
			case "journal":
				// A journal's fingerprint stamp; merge inputs need not
				// share one process's fingerprint, only one table.
			case "table":
				var t jsonlTableRecord
				if err := json.Unmarshal(line, &t); err != nil {
					return fmt.Errorf("experiments: shard %d: %w", p, err)
				}
				m := TableMeta{Name: t.Name, Note: t.Note, Header: t.Header}
				if !haveTab {
					meta, haveTab = m, true
				} else if meta.Name != m.Name || !slices.Equal(meta.Header, m.Header) {
					return fmt.Errorf("experiments: shard %d describes table %q, merge began with %q",
						p, m.Name, meta.Name)
				}
			case "row":
				var r journalRowRecord
				if err := json.Unmarshal(line, &r); err != nil {
					return fmt.Errorf("experiments: shard %d: %w", p, err)
				}
				if !haveTab {
					return fmt.Errorf("experiments: shard %d has a row before any table record", p)
				}
				if r.Table != meta.Name {
					return fmt.Errorf("experiments: shard %d row belongs to table %q, merging %q",
						p, r.Table, meta.Name)
				}
				if _, dup := rows[r.Index]; dup {
					return fmt.Errorf("experiments: duplicate row index %d (shard %d)", r.Index, p)
				}
				jr := journalRow{row: r.Row}
				if r.Metric != nil {
					jr.metric, jr.hasMetric = *r.Metric, true
				}
				rows[r.Index] = jr
			default:
				return fmt.Errorf("experiments: shard %d: unknown record type %q", p, kind.Type)
			}
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("experiments: shard %d: %w", p, err)
		}
	}
	if !haveTab {
		return fmt.Errorf("experiments: merge inputs carry no table record")
	}
	for i := 0; i < len(rows); i++ {
		if _, ok := rows[i]; !ok {
			return fmt.Errorf("experiments: gap in merged rows at index %d (have %d rows; a shard output is missing or incomplete)",
				i, len(rows))
		}
	}
	if err := sink.Begin(meta); err != nil {
		return err
	}
	for i := 0; i < len(rows); i++ {
		r := rows[i]
		e := emitted{index: i, row: r.row, metric: r.metric, hasMetric: r.hasMetric}
		if err := sinkEmit(sink, e); err != nil {
			return err
		}
	}
	return sink.End()
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Table 1 and Figures 2-12), plus the ablations, Section 6
// extensions, the scenario matrix, and the adaptively refined axis
// sweeps — 22 keyed experiments in all (see EXPERIMENTS.md for the
// catalog and cmd/figures for the batch driver).
//
// # Determinism contract
//
// Every experiment streams its rows through a RowSink in deterministic
// task order, and the streamed bytes of a deterministic sink (CSV,
// JSONL) are identical for:
//
//   - every Scale.Parallelism value and any goroutine schedule: sweep
//     points are self-contained (each sim.Run derives all randomness
//     from the config seed via sim.SplitSeed), and a reorder buffer
//     (par.ForOrdered) sequences out-of-order worker completions;
//   - every Scale.Shard.Count: rows carry stable global indices (their
//     position in the unsharded stream), shards own indices round-robin
//     (index mod Count), and MergeShards reassembles the exact
//     unsharded byte stream from per-shard JSONL outputs;
//   - resumed runs: a Journal checkpoints completed rows under the key
//     (table name, global index), and a run restarted with Scale.Resume
//     replays them — including the full-precision refinement metrics
//     adaptive sweeps rank intervals by — instead of recomputing;
//   - memoized runs: the sim.Arena shared across sweep points hands out
//     only values that are pure functions of their keys, so reuse can
//     never change a row (Scale.NoWorkloadReuse is the A/B control).
//
// Adaptive refinement (refine.go) keeps these guarantees by keying
// every decision exclusively on completed rows: the coarse pass is a
// full barrier, each round bisects a fixed number of intervals chosen
// deterministically from the metric gradients, and under sharding every
// shard evaluates all points (the curve is global state) while emitting
// only the rows it owns.
//
// The regression tests in engine_test.go, shard_test.go and
// journal_test.go pin each clause of this contract.
package experiments

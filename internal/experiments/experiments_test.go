package experiments

import (
	"strconv"
	"testing"
)

// tinyScale keeps experiment tests fast while exercising every code path.
func tinyScale() Scale {
	return Scale{
		Objects:        100,
		Requests:       2000,
		Runs:           1,
		Seed:           1,
		CacheFractions: []float64{0.02, 0.1},
		AlphaSweep:     []float64{0.5, 1.0},
		ESweep:         []float64{0, 0.5, 1},
		TraceEntries:   3000,
		TraceServers:   50,
	}
}

func checkTable(t *testing.T, tbl *Table, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Name == "" {
		t.Error("table has no name")
	}
	if len(tbl.Header) == 0 {
		t.Error("table has no header")
	}
	if len(tbl.Rows) == 0 {
		t.Fatal("table has no rows")
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Header) {
			t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tbl.Header))
		}
	}
}

func TestScaleValidation(t *testing.T) {
	bad := tinyScale()
	bad.Objects = 0
	if _, err := Table1(bad); err == nil {
		t.Error("zero objects accepted")
	}
	noFrac := tinyScale()
	noFrac.CacheFractions = nil
	if _, err := Figure5(noFrac); err == nil {
		t.Error("empty cache fractions accepted")
	}
}

func TestTable1(t *testing.T) {
	tbl, err := Table1(tinyScale())
	checkTable(t, tbl, err)
	got := map[string]string{}
	for _, row := range tbl.Rows {
		got[row[0]] = row[1]
	}
	if got["objects"] != "100" {
		t.Errorf("objects = %s, want 100", got["objects"])
	}
	if got["object_bitrate_KBps"] != "48.0" {
		t.Errorf("bitrate = %s, want 48.0", got["object_bitrate_KBps"])
	}
}

func TestFigure2CDFEndsAtOne(t *testing.T) {
	tbl, err := Figure2(tinyScale())
	checkTable(t, tbl, err)
	last := tbl.Rows[len(tbl.Rows)-1]
	cdf, err := strconv.ParseFloat(last[2], 64)
	if err != nil {
		t.Fatal(err)
	}
	if cdf != 1 {
		t.Errorf("final CDF = %v, want 1", cdf)
	}
}

func TestFigure3RatiosCenterOnOne(t *testing.T) {
	tbl, err := Figure3(tinyScale())
	checkTable(t, tbl, err)
	// The CDF at ratio 1.0 should be near the median.
	for _, row := range tbl.Rows {
		if row[0] == "1.000" {
			cdf, err := strconv.ParseFloat(row[2], 64)
			if err != nil {
				t.Fatal(err)
			}
			if cdf < 0.3 || cdf > 0.8 {
				t.Errorf("CDF at ratio 1.0 = %v, want near the median", cdf)
			}
			return
		}
	}
	t.Error("no ratio=1.0 bin found")
}

func TestFigure4HasThreePaths(t *testing.T) {
	tbl, err := Figure4(tinyScale())
	checkTable(t, tbl, err)
	paths := map[string]bool{}
	for _, row := range tbl.Rows {
		paths[row[0]] = true
	}
	for _, want := range []string{"INRIA,France", "Taiwan", "HongKong"} {
		if !paths[want] {
			t.Errorf("path %q missing from Figure 4 rows", want)
		}
	}
}

func TestSimulationFigures(t *testing.T) {
	s := tinyScale()
	builders := map[string]func(Scale) (*Table, error){
		"Figure5":  Figure5,
		"Figure7":  Figure7,
		"Figure8":  Figure8,
		"Figure10": Figure10,
		"Figure11": Figure11,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			tbl, err := build(s)
			checkTable(t, tbl, err)
			// 2 cache fractions x 3 policies.
			if len(tbl.Rows) != 6 {
				t.Errorf("rows = %d, want 6", len(tbl.Rows))
			}
		})
	}
}

func TestFigure6RowCount(t *testing.T) {
	tbl, err := Figure6(tinyScale())
	checkTable(t, tbl, err)
	// 2 alphas x 2 fractions x 2 policies.
	if len(tbl.Rows) != 8 {
		t.Errorf("rows = %d, want 8", len(tbl.Rows))
	}
}

func TestFigure9And12RowCount(t *testing.T) {
	for name, build := range map[string]func(Scale) (*Table, error){
		"Figure9": Figure9, "Figure12": Figure12,
	} {
		t.Run(name, func(t *testing.T) {
			tbl, err := build(tinyScale())
			checkTable(t, tbl, err)
			// 3 e values x 2 fractions.
			if len(tbl.Rows) != 6 {
				t.Errorf("rows = %d, want 6", len(tbl.Rows))
			}
		})
	}
}

func TestAblations(t *testing.T) {
	tbl, err := AblationEvictionGranularity(tinyScale())
	checkTable(t, tbl, err)
	if len(tbl.Rows) != 4 { // 2 fractions x 2 modes
		t.Errorf("eviction ablation rows = %d, want 4", len(tbl.Rows))
	}
	tbl, err = AblationEstimators(tinyScale())
	checkTable(t, tbl, err)
	if len(tbl.Rows) != 6 { // 2 fractions x 3 estimators
		t.Errorf("estimator ablation rows = %d, want 6", len(tbl.Rows))
	}
}

func TestAllProducesEveryTable(t *testing.T) {
	tables, err := All(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Experiments()) {
		t.Fatalf("All produced %d tables, want %d", len(tables), len(Experiments()))
	}
	if len(tables) != 24 {
		t.Fatalf("All produced %d tables, want 24 (paper suite + ablations + extensions + scenarios + refined incl. 2-D + hierarchy)", len(tables))
	}
	seen := map[string]bool{}
	for _, tbl := range tables {
		if seen[tbl.Name] {
			t.Errorf("duplicate table name %q", tbl.Name)
		}
		seen[tbl.Name] = true
	}
}

func TestDeterministicTables(t *testing.T) {
	a, err := Figure5(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Figure5(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rows {
		for j := range a.Rows[i] {
			if a.Rows[i][j] != b.Rows[i][j] {
				t.Fatalf("row %d cell %d differs across identical runs: %q vs %q",
					i, j, a.Rows[i][j], b.Rows[i][j])
			}
		}
	}
}

func TestExtensionStreamMerging(t *testing.T) {
	tbl, err := ExtensionStreamMerging(tinyScale())
	checkTable(t, tbl, err)
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 techniques", len(tbl.Rows))
	}
	// Parse savings per technique; merging must save versus unicast and
	// cached patching must save at least as much as plain patching.
	savings := map[string]float64{}
	for _, row := range tbl.Rows {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		savings[row[0]] = v
	}
	if savings["unicast"] != 0 {
		t.Errorf("unicast savings = %v, want 0", savings["unicast"])
	}
	if savings["patching"] <= 0 {
		t.Errorf("patching savings = %v, want > 0", savings["patching"])
	}
	if savings["patching+PB_cache"] < savings["patching"] {
		t.Errorf("cached patching (%v) must not save less than plain patching (%v)",
			savings["patching+PB_cache"], savings["patching"])
	}
}

func TestExtensionPartialViewing(t *testing.T) {
	tbl, err := ExtensionPartialViewing(tinyScale())
	checkTable(t, tbl, err)
	if len(tbl.Rows) != 6 { // 3 probabilities x 2 policies
		t.Errorf("rows = %d, want 6", len(tbl.Rows))
	}
}

func TestExtensionActiveProbing(t *testing.T) {
	tbl, err := ExtensionActiveProbing(tinyScale())
	checkTable(t, tbl, err)
	if len(tbl.Rows) != 4 {
		t.Errorf("rows = %d, want 4 estimators", len(tbl.Rows))
	}
}

func TestExtensionBaselines(t *testing.T) {
	tbl, err := ExtensionBaselines(tinyScale())
	checkTable(t, tbl, err)
	if len(tbl.Rows) != 7 {
		t.Errorf("rows = %d, want 7 policies", len(tbl.Rows))
	}
}

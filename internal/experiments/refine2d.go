package experiments

import (
	"cmp"
	"slices"

	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/sim"
)

// Two-dimensional adaptive refinement: the e x sigma response surface
// (how the best underestimation factor shifts with bandwidth
// variability) bends along both axes at once, so refining each axis
// separately misses the diagonal structure. The 2-D driver runs the
// coarse grid, then repeatedly evaluates the center of the cell whose
// known samples spread the widest, splitting the cell into four
// quadrants that inherit the samples on their closed bounds — a
// quadtree that concentrates points where the surface is steepest in
// any direction.
//
// The determinism contract matches the 1-D driver: cell scores are pure
// functions of completed metrics, every round selects a fixed number of
// cells (refineRoundPoints) ranked by (spread desc, x asc, y asc), and
// points are evaluated through the same shard-aware evalRound, so the
// streamed rows are byte-identical at any Parallelism and the sharded
// union equals the unsharded stream.

// sample2d is one evaluated surface point.
type sample2d struct {
	x, y, metric float64
}

// cell2d is one open refinement rectangle.
type cell2d struct {
	x0, x1, y0, y1 float64
}

// center returns the cell's bisection point.
func (c cell2d) center() (float64, float64) {
	return (c.x0 + c.x1) / 2, (c.y0 + c.y1) / 2
}

// spread scores the cell: the metric range over every known sample on
// its closed bounds. Cells always hold at least two samples (a corner
// of the original grid or a parent's center plus their own corners), so
// the score is well defined from the first round.
func (c cell2d) spread(samples []sample2d) float64 {
	lo, hi, n := 0.0, 0.0, 0
	for _, s := range samples {
		if s.x < c.x0 || s.x > c.x1 || s.y < c.y0 || s.y > c.y1 {
			continue
		}
		if n == 0 || s.metric < lo {
			lo = s.metric
		}
		if n == 0 || s.metric > hi {
			hi = s.metric
		}
		n++
	}
	return hi - lo
}

// adaptiveSweep2D streams a coarse 2-D grid pass followed by
// center-bisection refinement rounds. Rows carry a trailing "source"
// cell; meta.Header must already include it.
type adaptiveSweep2D struct {
	meta   TableMeta
	xs, ys []float64 // ascending coarse axes
	budget int
	point  func(xv, yv float64, innerParallelism int) (row []string, metric float64, err error)
}

func (a *adaptiveSweep2D) tableMeta() TableMeta { return a.meta }

func (a *adaptiveSweep2D) run(x exec, emit func(e emitted) error) error {
	type pt struct{ xv, yv float64 }
	nx, ny := len(a.xs), len(a.ys)
	coarse := make([]pt, 0, nx*ny)
	for _, xv := range a.xs {
		for _, yv := range a.ys {
			coarse = append(coarse, pt{xv, yv})
		}
	}
	var samples []sample2d
	evalList := func(list []pt, base int, source string) error {
		ms, err := evalRound(x, len(list), base, func(i, inner int) ([]string, float64, error) {
			return a.point(list[i].xv, list[i].yv, inner)
		}, source, emit)
		if err != nil {
			return err
		}
		for i, m := range ms {
			samples = append(samples, sample2d{x: list[i].xv, y: list[i].yv, metric: m})
		}
		return nil
	}
	// Coarse pass: the full grid in row-major order, a barrier before
	// refinement (cell scores need the complete corner set).
	if err := evalList(coarse, 0, "coarse"); err != nil {
		return err
	}
	next := nx * ny
	if nx < 2 || ny < 2 || a.budget <= 0 {
		return nil
	}
	minGapX := 2 * (a.xs[nx-1] - a.xs[0]) / minGapDivisor
	minGapY := 2 * (a.ys[ny-1] - a.ys[0]) / minGapDivisor

	cells := make([]cell2d, 0, (nx-1)*(ny-1))
	for i := 0; i+1 < nx; i++ {
		for j := 0; j+1 < ny; j++ {
			cells = append(cells, cell2d{a.xs[i], a.xs[i+1], a.ys[j], a.ys[j+1]})
		}
	}
	remaining := a.budget
	for remaining > 0 {
		// Rank refinable cells; both keys are pure functions of
		// completed rows, so the selection is deterministic.
		type scored struct {
			c      cell2d
			spread float64
		}
		candidates := make([]scored, 0, len(cells))
		for _, c := range cells {
			if c.x1-c.x0 <= minGapX && c.y1-c.y0 <= minGapY {
				continue // resolved in both directions
			}
			candidates = append(candidates, scored{c: c, spread: c.spread(samples)})
		}
		slices.SortStableFunc(candidates, func(a, b scored) int {
			if a.spread != b.spread {
				return cmp.Compare(b.spread, a.spread)
			}
			if a.c.x0 != b.c.x0 {
				return cmp.Compare(a.c.x0, b.c.x0)
			}
			return cmp.Compare(a.c.y0, b.c.y0)
		})
		k := refineRoundPoints
		if k > remaining {
			k = remaining
		}
		if k > len(candidates) {
			k = len(candidates)
		}
		if k == 0 {
			return nil // surface fully resolved before the budget ran out
		}
		centers := make([]pt, k)
		for i := 0; i < k; i++ {
			cx, cy := candidates[i].c.center()
			centers[i] = pt{cx, cy}
		}
		if err := evalList(centers, next, "refined"); err != nil {
			return err
		}
		next += k
		remaining -= k
		// Split each refined cell into its four quadrants; the quadrants
		// inherit every sample on their closed bounds (at least the
		// fresh center plus one original corner each).
		split := map[cell2d]bool{}
		for i := 0; i < k; i++ {
			split[candidates[i].c] = true
		}
		kept := cells[:0]
		for _, c := range cells {
			if !split[c] {
				kept = append(kept, c)
				continue
			}
			cx, cy := c.center()
			kept = append(kept,
				cell2d{c.x0, cx, c.y0, cy},
				cell2d{cx, c.x1, c.y0, cy},
				cell2d{c.x0, cx, cy, c.y1},
				cell2d{cx, c.x1, cy, c.y1},
			)
		}
		cells = kept
	}
	return nil
}

// RefinedESigmaSweep is the carried-over 2-D refinement: the
// underestimation factor e against bandwidth-variability sigma at the
// middle cache fraction, adaptively concentrating points where the
// service-delay surface bends fastest in either direction — resolving
// how the delay-minimizing e shifts as paths get more variable, which
// the paper's separate Figure 9/variability sweeps can only hint at.
func RefinedESigmaSweep(s Scale) (*Table, error) { return tableOf(s, refinedESigmaSweepRunner) }

func refinedESigmaSweepRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	frac := s.midFraction()
	return &adaptiveSweep2D{
		meta: TableMeta{
			Name:   "Refined sweep: e x sigma, adaptive 2-D (delay objective)",
			Note:   "coarse e x sigma grid, then center bisection of the steepest cells; mid-size cache, lognormal variability",
			Header: []string{"e", "sigma", "cache_pct", "traffic_reduction", "avg_delay_s", "avg_quality", "source"},
		},
		xs:     s.ESweep,
		ys:     s.sigmas(),
		budget: s.RefineBudget,
		point: func(e, sigma float64, innerPar int) ([]string, float64, error) {
			p, err := core.NewHybrid(e)
			if err != nil {
				return nil, 0, err
			}
			variation, err := bandwidth.NewLognormalRatio(sigma)
			if err != nil {
				return nil, 0, err
			}
			m, err := sim.Run(sim.Config{
				Workload:    s.workload(),
				CacheBytes:  int64(frac * float64(total)),
				Policy:      p,
				Variation:   variation,
				Runs:        s.Runs,
				Seed:        s.Seed,
				Parallelism: innerPar,
				Arena:       arena,
			})
			if err != nil {
				return nil, 0, err
			}
			return []string{
				f3(e), f3(sigma), f3(frac * 100),
				f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay), f3(m.AvgStreamQuality),
			}, m.AvgServiceDelay, nil
		},
	}, nil
}

package experiments

import (
	"math"
	"strconv"
	"sync/atomic"
	"testing"
)

// kneeSweep builds a synthetic adaptive sweep whose metric is a step at
// x=knee: flat before, flat after, so all the gradient concentrates in
// the interval straddling the knee. The evaluation counter is guarded:
// point runs concurrently on sweep workers.
func kneeSweep(axis []float64, budget int, knee float64) (*adaptiveSweep, *atomic.Int64) {
	var evaluated atomic.Int64
	sw := &adaptiveSweep{
		meta: TableMeta{
			Name:   "synthetic knee",
			Header: []string{"x", "metric", "source"},
		},
		axis:   axis,
		budget: budget,
		point: func(x float64, _ int) ([]string, float64, error) {
			evaluated.Add(1)
			metric := 0.0
			if x >= knee {
				metric = 10
			}
			return []string{f3(x), f3(metric)}, metric, nil
		},
	}
	return sw, &evaluated
}

func runAdaptive(t *testing.T, sw *adaptiveSweep, parallelism int) [][]string {
	t.Helper()
	var rows [][]string
	s := tinyScale()
	s.Parallelism = parallelism
	if err := stream(s, sw, sinkFunc(func(row []string) error {
		rows = append(rows, row)
		return nil
	})); err != nil {
		t.Fatal(err)
	}
	return rows
}

// sinkFunc adapts a row function into a RowSink.
type sinkFunc func(row []string) error

func (f sinkFunc) Begin(TableMeta) error  { return nil }
func (f sinkFunc) Row(row []string) error { return f(row) }
func (f sinkFunc) End() error             { return nil }

// TestRefinementBisectsSteepestInterval drives the driver with a step
// response: every refined point must land inside the interval
// containing the step, repeatedly halving it.
func TestRefinementBisectsSteepestInterval(t *testing.T) {
	axis := []float64{0, 0.25, 0.5, 0.75, 1}
	const knee = 0.6 // inside (0.5, 0.75)
	sw, _ := kneeSweep(axis, 4, knee)
	rows := runAdaptive(t, sw, 4)

	if len(rows) != len(axis)+4 {
		t.Fatalf("rows = %d, want %d coarse + 4 refined", len(rows), len(axis))
	}
	for i, row := range rows {
		wantSource := "coarse"
		if i >= len(axis) {
			wantSource = "refined"
		}
		if row[len(row)-1] != wantSource {
			t.Errorf("row %d source = %q, want %q", i, row[len(row)-1], wantSource)
		}
	}
	// The first refined point is the midpoint of the steepest coarse
	// interval (0.5, 0.75); later points keep closing in on the knee.
	// (Ties on the flat segments hand the second pick per round to the
	// leftmost flat interval, which stays flat, so the steep interval is
	// re-bisected every round.)
	first, err := strconv.ParseFloat(rows[len(axis)][0], 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first-0.625) > 1e-9 {
		t.Errorf("first refined point = %v, want 0.625 (midpoint of the steep interval)", first)
	}
	for _, row := range rows[len(axis):] {
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			t.Fatal(err)
		}
		if x <= 0 || x >= 1 {
			t.Errorf("refined point %v outside the axis range", x)
		}
	}
}

// TestRefinementPointSelectionIdenticalAcrossParallelism pins the
// acceptance criterion directly on the driver: the refined point
// sequence (values and order) is identical at Parallelism 1, 2 and 8.
func TestRefinementPointSelectionIdenticalAcrossParallelism(t *testing.T) {
	axis := []float64{0, 0.2, 0.4, 0.6, 0.8, 1}
	var ref [][]string
	for _, par := range []int{1, 2, 8} {
		sw, _ := kneeSweep(axis, 5, 0.45)
		rows := runAdaptive(t, sw, par)
		if ref == nil {
			ref = rows
			continue
		}
		if len(rows) != len(ref) {
			t.Fatalf("parallelism %d emitted %d rows, parallelism 1 emitted %d", par, len(rows), len(ref))
		}
		for i := range rows {
			for j := range rows[i] {
				if rows[i][j] != ref[i][j] {
					t.Fatalf("parallelism %d row %d cell %d = %q, parallelism 1 had %q",
						par, i, j, rows[i][j], ref[i][j])
				}
			}
		}
	}
}

// TestRefinementRespectsMinGap: with a huge budget the driver stops
// once every interval is narrower than the resolution floor instead of
// burning points forever.
func TestRefinementRespectsMinGap(t *testing.T) {
	sw, evaluated := kneeSweep([]float64{0, 1}, 10000, 0.3)
	rows := runAdaptive(t, sw, 4)
	// span/minGapDivisor floors the interval width at ~1/128 of the
	// axis, so the driver can never need more than a few hundred points.
	if len(rows) >= 2+10000 {
		t.Fatalf("refinement consumed the whole %d budget despite the gap floor", 10000)
	}
	if got := int(evaluated.Load()); got != len(rows) {
		t.Errorf("evaluated %d points but emitted %d rows", got, len(rows))
	}
}

// TestRefinementZeroBudgetIsCoarseOnly.
func TestRefinementZeroBudgetIsCoarseOnly(t *testing.T) {
	sw, _ := kneeSweep([]float64{0, 0.5, 1}, 0, 0.4)
	rows := runAdaptive(t, sw, 2)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 coarse only", len(rows))
	}
	for _, row := range rows {
		if row[len(row)-1] != "coarse" {
			t.Errorf("unexpected refined row %v with zero budget", row)
		}
	}
}

// TestRefinedExperimentsProduceTables smoke-tests the three public
// refined sweeps end to end at a small budget.
func TestRefinedExperimentsProduceTables(t *testing.T) {
	builders := map[string]func(Scale) (*Table, error){
		"RefinedESweep":     RefinedESweep,
		"RefinedSigmaSweep": RefinedSigmaSweep,
		"RefinedCacheSweep": RefinedCacheSweep,
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			s := tinyScale()
			s.RefineBudget = 2
			tbl, err := build(s)
			checkTable(t, tbl, err)
			var refined int
			for _, row := range tbl.Rows {
				if row[len(row)-1] == "refined" {
					refined++
				}
			}
			if refined != 2 {
				t.Errorf("refined rows = %d, want 2 (the budget)", refined)
			}
		})
	}
}

func TestScaleRejectsNegativeRefineBudget(t *testing.T) {
	s := tinyScale()
	s.RefineBudget = -1
	if _, err := RefinedESweep(s); err == nil {
		t.Error("negative RefineBudget accepted")
	}
}

package experiments

import (
	"strconv"

	"streamcache/internal/core"
	"streamcache/internal/sim"
)

// TierColumns are the per-tier byte-fraction columns shared by the
// hierarchy experiment and cmd/loadgen's cluster summary, so the live
// harness and the simulator report the same shape. The four fractions
// partition the watched bytes by serving tier: local edge cache, peer
// owner's cache, parent cache, origin path.
var TierColumns = []string{
	"edge_byte_frac", "peer_byte_frac", "parent_byte_frac", "origin_byte_frac",
}

// HierarchyHeader is the hierarchy experiment's row schema; its tail
// is TierColumns.
var HierarchyHeader = []string{
	"cache_pct", "levels", "edges", "peering", "parent_frac",
	"traffic_reduction",
	"edge_byte_frac", "peer_byte_frac", "parent_byte_frac", "origin_byte_frac",
}

// Hierarchy sweeps the multi-node axis: tier depth (1 or 2 levels) x
// edge count x peering policy x parent capacity split, at each cache
// fraction. The single-edge single-level row coincides with the flat
// simulator (pinned by TestHierarchySingleNodeMatchesRun), so the
// sweep reads as "what does the same total cache buy when split
// across a cluster".
func Hierarchy(s Scale) (*Table, error) { return tableOf(s, hierarchyRunner) }

// hierarchyRow runs one hierarchy sweep point (the RunHierarchy
// counterpart of simRow: inner Parallelism pinned to 1, arena shared
// across the sweep).
func hierarchyRow(arena *sim.Arena, cfg sim.HierarchyConfig, render func(sim.HierarchyMetrics) []string) rowTask {
	return func() ([]string, error) {
		cfg.Parallelism = 1
		cfg.Arena = arena
		m, err := sim.RunHierarchy(cfg)
		if err != nil {
			return nil, err
		}
		return render(m), nil
	}
}

func hierarchyRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	sw := &taskSweep{meta: TableMeta{
		Name:   "Hierarchy: levels x edges x peering under one cluster-wide cache budget (PB policy)",
		Header: HierarchyHeader,
	}}
	topologies := []struct {
		levels     int
		edges      int
		peering    sim.PeeringPolicy
		parentFrac float64
	}{
		{1, 1, sim.PeeringNone, 0},
		{1, 4, sim.PeeringNone, 0},
		{1, 4, sim.PeeringOwner, 0},
		{2, 4, sim.PeeringNone, 0.5},
		{2, 4, sim.PeeringOwner, 0.5},
	}
	for _, frac := range s.CacheFractions {
		for _, topo := range topologies {
			topo := topo
			sw.tasks = append(sw.tasks, hierarchyRow(arena, sim.HierarchyConfig{
				Config: sim.Config{
					Workload:   s.workload(),
					CacheBytes: int64(frac * float64(total)),
					Policy:     core.NewPB(),
					Runs:       s.Runs,
					Seed:       s.Seed,
				},
				Edges:          topo.edges,
				Levels:         topo.levels,
				ParentFraction: topo.parentFrac,
				Peering:        topo.peering,
			}, func(m sim.HierarchyMetrics) []string {
				return []string{
					f3(frac * 100),
					strconv.Itoa(topo.levels), strconv.Itoa(topo.edges), string(topo.peering),
					f3(topo.parentFrac),
					f3(m.TrafficReductionRatio),
					f3(m.EdgeByteFrac), f3(m.PeerByteFrac), f3(m.ParentByteFrac), f3(m.OriginByteFrac),
				}
			}))
		}
	}
	return sw, nil
}

package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestJournalCompactResumeByteIdentical is the compaction acceptance
// contract: compacting a mid-sweep checkpoint changes nothing a resume
// can observe — the resumed run produces byte-identical output and the
// final journal holds every row exactly once — while the compacted file
// itself shrinks to one line per live record.
func TestJournalCompactResumeByteIdentical(t *testing.T) {
	for _, key := range []string{"figure5", "refined-e"} {
		t.Run(key, func(t *testing.T) {
			s := tinyScale()
			s.RefineBudget = 3
			dir := t.TempDir()
			path := filepath.Join(dir, "journal.jsonl")

			want := journaledStream(t, key, s, path, false)
			total := countJournalRows(t, path)

			// Kill mid-sweep, then compact the surviving prefix before
			// resuming — the operator workflow for long sweeps.
			full, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, full[:len(full)*3/5], 0o644); err != nil {
				t.Fatal(err)
			}
			j, err := ResumeJournal(path, s.Fingerprint())
			if err != nil {
				t.Fatal(err)
			}
			before := j.CompletedRows(j.soleTableName(t))
			if err := j.Compact(); err != nil {
				t.Fatal(err)
			}
			j.Close()
			if got := countJournalRows(t, path); got != before {
				t.Fatalf("compacted journal holds %d rows, want the %d live before compaction", got, before)
			}

			got := journaledStream(t, key, s, path, true)
			if !bytes.Equal(got, want) {
				t.Errorf("resume after compaction differs from the uninterrupted run:\n%s\nwant:\n%s", got, want)
			}
			if n := countJournalRows(t, path); n != total {
				t.Errorf("final journal holds %d rows, want %d", n, total)
			}

			// Compacting the complete journal is idempotent: a second
			// compaction rewrites the identical bytes.
			j, err = ResumeJournal(path, s.Fingerprint())
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Compact(); err != nil {
				t.Fatal(err)
			}
			j.Close()
			once, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			j, err = ResumeJournal(path, s.Fingerprint())
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Compact(); err != nil {
				t.Fatal(err)
			}
			j.Close()
			twice, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(once, twice) {
				t.Error("second compaction changed the journal bytes")
			}
		})
	}
}

// soleTableName returns the name of the journal's only table (test
// helper; the compaction tests journal exactly one experiment).
func (j *Journal) soleTableName(t *testing.T) string {
	t.Helper()
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.tables) != 1 {
		t.Fatalf("journal holds %d tables, want 1", len(j.tables))
	}
	for name := range j.tables {
		return name
	}
	return ""
}

// TestJournalCompactCrashMidCompaction: a kill during compaction leaves
// either the untouched original (crash before the rename, with a stale
// partial .compact sibling) or the complete compacted file (crash
// after). Resume from both states must be byte-identical, and the stale
// sibling must not disturb — and must be overwritten by — a later
// compaction.
func TestJournalCompactCrashMidCompaction(t *testing.T) {
	key := "refined-e"
	s := tinyScale()
	s.RefineBudget = 3
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	want := journaledStream(t, key, s, path, false)
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := full[:len(full)*3/5]

	// Crash before the rename: the original journal survives next to a
	// partial .compact tmp (here: half the bytes of a plausible rewrite).
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	stale := cut[:len(cut)/2]
	if err := os.WriteFile(path+".compact", stale, 0o644); err != nil {
		t.Fatal(err)
	}
	got := journaledStream(t, key, s, path, true)
	if !bytes.Equal(got, want) {
		t.Error("resume beside a stale .compact tmp differs from the uninterrupted run")
	}

	// The stale tmp is ignored by resume and replaced wholesale by the
	// next compaction.
	j, err := ResumeJournal(path, s.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := os.Stat(path + ".compact"); !os.IsNotExist(err) {
		t.Errorf("compaction left its tmp file behind (stat err %v)", err)
	}

	// Crash after the rename: the journal is exactly the compacted file.
	// Re-cut, compact, and resume — still byte-identical.
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, cut, 0o644); err != nil {
		t.Fatal(err)
	}
	j, err = ResumeJournal(path, s.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	got = journaledStream(t, key, s, path, true)
	if !bytes.Equal(got, want) {
		t.Error("resume from a compacted checkpoint differs from the uninterrupted run")
	}
}

// TestJournalCompactMetricRecords: compaction keeps metric-only
// checkpoints (foreign points fetched through the exchange) that no row
// supersedes, drops the ones a row now covers, and stays appendable
// afterwards.
func TestJournalCompactMetricRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := CreateJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	meta := TableMeta{Name: "probe", Header: []string{"v"}}
	if err := j.beginTable(meta); err != nil {
		t.Fatal(err)
	}
	if err := j.recordMetric("probe", 5, 1.25); err != nil {
		t.Fatal(err)
	}
	if err := j.recordMetric("probe", 2, 9.5); err != nil {
		t.Fatal(err)
	}
	// Index 2's owner later emits the real row: the metric-only record
	// is now superseded.
	if err := j.record("probe", emitted{index: 2, row: []string{"a"}, metric: 9.5, hasMetric: true}); err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	// Appends after compaction land in the compacted file.
	if err := j.record("probe", emitted{index: 7, row: []string{"b"}}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), `"type":"metric"`); n != 1 {
		t.Errorf("compacted journal holds %d metric records, want 1 (index 2 superseded by its row)\n%s", n, data)
	}

	r, err := ResumeJournal(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if m, ok := r.replayMetric("probe", 5); !ok || m != 1.25 {
		t.Errorf("replayMetric(5) = %v,%v, want 1.25,true", m, ok)
	}
	if m, ok := r.replayMetric("probe", 2); !ok || m != 9.5 {
		t.Errorf("replayMetric(2) = %v,%v, want 9.5,true", m, ok)
	}
	if row, ok := r.replay("probe", 7); !ok || row.row[0] != "b" {
		t.Errorf("replay(7) = %v,%v, want the post-compaction append", row, ok)
	}
}

package experiments

import (
	"streamcache/internal/bandwidth"
	"streamcache/internal/core"
	"streamcache/internal/sim"
)

// defaultSigmas is the fallback variability grid when the scale carries
// no SigmaSweep.
func (s Scale) sigmas() []float64 {
	if len(s.SigmaSweep) > 0 {
		return s.SigmaSweep
	}
	return []float64{0, 0.25, 0.55}
}

// midFraction is the scale's middle cache fraction, the fixed cache
// size of the single-axis scenario sweeps.
func (s Scale) midFraction() float64 {
	return s.CacheFractions[len(s.CacheFractions)/2]
}

// ScenarioMatrix sweeps the three-dimensional scenario grid the paper
// never ran: bandwidth-estimator type x lognormal variability level
// (sigma of the sample-to-mean ratio) x cache policy, at the middle
// cache fraction of the scale. The grid interpolates between the
// paper's isolated comparisons (Figures 7-9 fix two of the three axes)
// and was impractical sequentially: at paper scale it is
// |estimators| x |sigmas| x |policies| full simulations, which the
// parallel engine fans out across cores.
func ScenarioMatrix(s Scale) (*Table, error) { return tableOf(s, scenarioMatrixRunner) }

func scenarioMatrixRunner(s Scale) (runner, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	arena := s.newArena()
	total, err := s.totalBytes(arena)
	if err != nil {
		return nil, err
	}
	frac := s.midFraction()
	estimators := []struct {
		label   string
		factory sim.EstimatorFactory
	}{
		{"oracle", sim.OracleEstimator},
		{"ewma_0.3", sim.EWMAEstimator(0.3)},
		{"underestimate_0.5", sim.UnderestimatingOracle(0.5)},
		{"active_probe_0.1", sim.ActiveProbeEstimator(0.1)},
	}
	policies := []core.Policy{core.NewIF(), core.NewPB(), core.NewIB()}

	sw := &taskSweep{meta: TableMeta{
		Name: "Scenario matrix: estimator x variability sigma x policy",
		Note: "mid-size cache; sigma 0 = constant bandwidth, 0.25 ~ measured paths, 0.55 ~ NLANR logs",
		Header: []string{
			"sigma", "estimator", "policy",
			"traffic_reduction", "avg_delay_s", "avg_quality", "total_value", "hit_ratio",
		},
	}}
	for _, sigma := range s.sigmas() {
		variation, err := bandwidth.NewLognormalRatio(sigma)
		if err != nil {
			return nil, err
		}
		for _, est := range estimators {
			for _, p := range policies {
				sw.tasks = append(sw.tasks, simRow(arena, sim.Config{
					Workload:   s.workload(),
					CacheBytes: int64(frac * float64(total)),
					Policy:     p,
					Variation:  variation,
					Estimators: est.factory,
					Runs:       s.Runs,
					Seed:       s.Seed,
				}, func(m sim.Metrics) []string {
					return []string{
						f3(sigma), est.label, p.Name(),
						f3(m.TrafficReductionRatio), f1(m.AvgServiceDelay),
						f3(m.AvgStreamQuality), f1(m.TotalAddedValue), f3(m.HitRatio),
					}
				}))
			}
		}
	}
	return sw, nil
}

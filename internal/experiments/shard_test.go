package experiments

import (
	"bytes"
	"fmt"
	"io"
	"strings"
	"testing"
)

func TestParseShard(t *testing.T) {
	cases := []struct {
		in   string
		want Shard
		ok   bool
	}{
		{"", Shard{}, true},
		{"0/1", Shard{0, 1}, true},
		{"0/2", Shard{0, 2}, true},
		{"1/2", Shard{1, 2}, true},
		{"4/5", Shard{4, 5}, true},
		{"2/2", Shard{}, false},  // index out of range
		{"-1/2", Shard{}, false}, // negative index
		{"0/0", Shard{}, false},  // zero count
		{"1", Shard{}, false},    // no slash
		{"a/b", Shard{}, false},  // not numeric
	}
	for _, c := range cases {
		got, err := ParseShard(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseShard(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseShard(%q) accepted, want error", c.in)
		}
	}
}

func TestShardOwnershipPartitions(t *testing.T) {
	// Every index is owned by exactly one shard, and indices() agrees
	// with owns().
	for _, count := range []int{1, 2, 5} {
		seen := map[int]int{}
		for idx := 0; idx < count; idx++ {
			sh := Shard{Index: idx, Count: count}
			for _, g := range sh.indices(17) {
				if !sh.owns(g) {
					t.Errorf("shard %v: indices() yields %d but owns() denies it", sh, g)
				}
				seen[g]++
			}
		}
		for g := 0; g < 17; g++ {
			if seen[g] != 1 {
				t.Errorf("count %d: index %d owned by %d shards, want 1", count, g, seen[g])
			}
		}
	}
}

func TestScaleRejectsBadShard(t *testing.T) {
	s := tinyScale()
	s.Shard = Shard{Index: 3, Count: 2}
	if _, err := Figure5(s); err == nil {
		t.Error("out-of-range shard accepted")
	}
}

// shardJSONL streams one experiment shard into JSONL bytes.
func shardJSONL(t *testing.T, key string, s Scale, sh Shard) []byte {
	t.Helper()
	s.Shard = sh
	var buf bytes.Buffer
	if err := Stream(key, s, NewJSONLSink(&buf)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardUnionByteIdentical is the sharding acceptance contract: for
// Shard.Count in {1, 2, 5} and Parallelism in {1, 8}, merging the
// per-shard JSONL outputs reproduces the exact CSV and JSONL bytes of
// the unsharded single-process stream. Covers a fixed grid (figure5),
// the scenario matrix (stateful estimators), and an adaptive refinement
// sweep (refined-e), whose refinement decisions must not depend on
// which shard emits which row.
func TestShardUnionByteIdentical(t *testing.T) {
	for _, key := range []string{"figure5", "scenarios", "refined-e", "refined-esigma"} {
		t.Run(key, func(t *testing.T) {
			base := tinyScale()
			base.RefineBudget = 3
			var wantCSV, wantJSONL bytes.Buffer
			if err := Stream(key, base, MultiSink{NewCSVSink(&wantCSV), NewJSONLSink(&wantJSONL)}); err != nil {
				t.Fatal(err)
			}

			for _, count := range []int{1, 2, 5} {
				for _, par := range []int{1, 8} {
					t.Run(fmt.Sprintf("count%d_par%d", count, par), func(t *testing.T) {
						s := tinyScale()
						s.RefineBudget = 3
						s.Parallelism = par
						parts := make([]io.Reader, 0, count)
						for idx := 0; idx < count; idx++ {
							b := shardJSONL(t, key, s, Shard{Index: idx, Count: count})
							parts = append(parts, bytes.NewReader(b))
						}
						var gotCSV, gotJSONL bytes.Buffer
						if err := MergeShards(parts, MultiSink{NewCSVSink(&gotCSV), NewJSONLSink(&gotJSONL)}); err != nil {
							t.Fatal(err)
						}
						if !bytes.Equal(gotCSV.Bytes(), wantCSV.Bytes()) {
							t.Errorf("merged CSV differs from unsharded stream:\n%s\nwant:\n%s",
								gotCSV.String(), wantCSV.String())
						}
						if !bytes.Equal(gotJSONL.Bytes(), wantJSONL.Bytes()) {
							t.Errorf("merged JSONL differs from unsharded stream")
						}
					})
				}
			}
		})
	}
}

// TestMergeShardsValidation exercises the merge's gap, duplicate and
// mismatch detection.
func TestMergeShardsValidation(t *testing.T) {
	table := `{"type":"table","name":"T","header":["x"]}` + "\n"
	row := func(i int) string {
		return fmt.Sprintf(`{"type":"row","table":"T","index":%d,"row":["%d"]}`+"\n", i, i)
	}
	merge := func(parts ...string) error {
		in := make([]io.Reader, len(parts))
		for i, p := range parts {
			in[i] = strings.NewReader(p)
		}
		return MergeShards(in, &TableSink{})
	}

	if err := merge(table+row(0)+row(2), table+row(1)); err != nil {
		t.Errorf("complete merge rejected: %v", err)
	}
	if err := merge(); err == nil {
		t.Error("zero parts accepted")
	}
	if err := merge(table + row(0) + row(0)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate index not caught: %v", err)
	}
	if err := merge(table+row(0), table+row(0)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("cross-shard duplicate not caught: %v", err)
	}
	if err := merge(table + row(0) + row(2)); err == nil || !strings.Contains(err.Error(), "gap") {
		t.Errorf("gap not caught: %v", err)
	}
	if err := merge(table, `{"type":"table","name":"U","header":["x"]}`+"\n"); err == nil {
		t.Error("table mismatch not caught")
	}
	if err := merge(row(0)); err == nil {
		t.Error("row before table record accepted")
	}
	if err := merge(table + "not json\n"); err == nil {
		t.Error("corrupt line accepted")
	}
	// Journal fingerprint stamps are tolerated (journals are merge inputs
	// too).
	if err := merge(`{"type":"journal","fingerprint":"f"}` + "\n" + table + row(0)); err != nil {
		t.Errorf("journal stamp rejected: %v", err)
	}
}

#!/usr/bin/env bash
# Live-tier smoke: start a sharded proxyd, drive it with loadgen for a
# few seconds of closed-loop load, assert a nonzero bandwidth-weighted
# prefix-hit ratio and verified content, then SIGTERM the server and
# require a clean graceful drain (exit 0 with a final stats line).
# `make proxy-check` and the CI proxy-check job both call this.
set -euo pipefail

ORIGIN_ADDR=${ORIGIN_ADDR:-127.0.0.1:18080}
PROXY_ADDR=${PROXY_ADDR:-127.0.0.1:18081}
tmp=$(mktemp -d)
pid=

cleanup() {
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/proxyd" ./cmd/proxyd
go build -o "$tmp/loadgen" ./cmd/loadgen

"$tmp/proxyd" -origin-addr "$ORIGIN_ADDR" -proxy-addr "$PROXY_ADDR" \
    -shards 4 -objects 24 -mean-kb 64 -origin-kbps 0 -cache-mb 8 -policy LRU \
    >"$tmp/proxyd.log" 2>&1 &
pid=$!

# loadgen polls /stats for readiness (-wait), verifies every download's
# digest, and fails unless the live bandwidth-weighted hit ratio is
# nonzero.
"$tmp/loadgen" -proxy "http://$PROXY_ADDR" -clients 4 -requests 120 \
    -objects 24 -mean-kb 64 -catalog-seed 1 -wait 15s \
    -verify -min-hit-ratio 0.05 -out "$tmp/loadgen.csv"
cat "$tmp/loadgen.csv"

kill -TERM "$pid"
drain_ok=0
if wait "$pid"; then
    drain_ok=1
fi
pid=
if [[ "$drain_ok" != 1 ]]; then
    echo "proxy-check: proxyd did not exit cleanly on SIGTERM" >&2
    cat "$tmp/proxyd.log" >&2
    exit 1
fi
grep -q 'drained; final stats' "$tmp/proxyd.log" || {
    echo "proxy-check: no drain confirmation in proxyd log" >&2
    cat "$tmp/proxyd.log" >&2
    exit 1
}
echo "proxy-check: live stack served load with cache hits and drained cleanly"

#!/usr/bin/env bash
# End-to-end exercise of the mediavet <-> `go vet -vettool` protocol
# (OPERATIONS.md §11). Three phases:
#   1. the shipped tree passes `go vet -vettool=mediavet ./...`;
#   2. an injected wall-clock read in internal/sim fails it, and the
#      failure names the determinism analyzer;
#   3. an injected origin fetch under a held shard lock in
#      internal/proxy fails it, naming the shardlock analyzer.
# Phases 2-3 run in a disposable copy of the tree so the working
# checkout is never touched. `make lint-check` and CI both call this.
set -euo pipefail

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT

go build -o "$tmp/mediavet" ./cmd/mediavet

echo "lint-check: phase 1 — shipped tree is clean under go vet -vettool"
go vet -vettool="$tmp/mediavet" ./...

copy=$tmp/tree
mkdir -p "$copy"
# Copy the module without build outputs or caches; git metadata is not
# needed since we only run go vet in the copy.
tar -C "$PWD" --exclude ./.git --exclude ./.cache --exclude ./bin --exclude ./results -cf - . | tar -C "$copy" -xf -

expect_failure() {
    local label=$1 analyzer=$2 pkg=$3
    local out
    if out=$(cd "$copy" && go vet -vettool="$tmp/mediavet" "$pkg" 2>&1); then
        echo "lint-check: FAIL: $label was not flagged" >&2
        return 1
    fi
    if ! grep -q "$analyzer:" <<<"$out"; then
        echo "lint-check: FAIL: $label failed but not via the $analyzer analyzer:" >&2
        echo "$out" >&2
        return 1
    fi
    echo "lint-check: $label correctly rejected by $analyzer"
}

echo "lint-check: phase 2 — injected wall-clock read in internal/sim"
cat >"$copy/internal/sim/injected_violation.go" <<'EOF'
package sim

import "time"

// WallClockSeed is an injected violation: seeding from the wall clock
// breaks bit-identical replay.
func WallClockSeed() uint64 {
	return uint64(time.Now().UnixNano())
}
EOF
expect_failure "wall-clock read in internal/sim" determinism ./internal/sim/
rm "$copy/internal/sim/injected_violation.go"

echo "lint-check: phase 3 — injected origin fetch under a held shard lock"
cat >"$copy/internal/proxy/injected_violation.go" <<'EOF'
package proxy

import "context"

// LockedFetch is an injected violation: an origin round-trip while the
// shard mutex is held serializes every request on that shard.
func (p *Proxy) LockedFetch(ctx context.Context, meta Meta, origin string) error {
	sh := p.shardFor(meta.ID)
	sh.mu.Lock()
	resp, err := p.originRequest(ctx, meta, origin, 0)
	if err == nil {
		resp.Body.Close()
	}
	sh.mu.Unlock()
	return err
}
EOF
expect_failure "origin fetch under shard lock in internal/proxy" shardlock ./internal/proxy/
rm "$copy/internal/proxy/injected_violation.go"

echo "lint-check: all phases passed"

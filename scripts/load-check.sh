#!/usr/bin/env bash
# Open-loop smoke (OPERATIONS.md §9): build proxyd + loadgen, check the
# generated arrival schedule is byte-identical across two dry runs at
# the same seed, drive a short open-loop ramp against a live proxyd,
# assert the live-capacity row schema is stable and goodput is nonzero,
# then SIGTERM the server and require a clean graceful drain.
# `make load-check` and the CI load-check job both call this.
set -euo pipefail

ORIGIN_ADDR=${ORIGIN_ADDR:-127.0.0.1:18090}
PROXY_ADDR=${PROXY_ADDR:-127.0.0.1:18091}
tmp=$(mktemp -d)
pid=

cleanup() {
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/proxyd" ./cmd/proxyd
go build -o "$tmp/loadgen" ./cmd/loadgen

# Determinism: two dry runs at the same seed must emit byte-identical
# arrival schedules (no server involved).
common=(-mode open -objects 24 -mean-kb 64 -catalog-seed 1 -trace-seed 7
        -rate 40 -duration 5 -slo-ms 1000)
"$tmp/loadgen" "${common[@]}" -dry-run -schedule-out "$tmp/schedule-a.jsonl" -format jsonl
"$tmp/loadgen" "${common[@]}" -dry-run -schedule-out "$tmp/schedule-b.jsonl" -format jsonl
cmp "$tmp/schedule-a.jsonl" "$tmp/schedule-b.jsonl" || {
    echo "load-check: schedule not byte-identical across identical seeds" >&2
    exit 1
}
[[ -s "$tmp/schedule-a.jsonl" ]] || {
    echo "load-check: dry run emitted an empty schedule" >&2
    exit 1
}

"$tmp/proxyd" -origin-addr "$ORIGIN_ADDR" -proxy-addr "$PROXY_ADDR" \
    -shards 4 -objects 24 -mean-kb 64 -origin-kbps 0 -cache-mb 8 -policy LRU \
    >"$tmp/proxyd.log" 2>&1 &
pid=$!

# A short two-level ramp at time-scale 2 (10 workload seconds in ~5s of
# wall clock per level), verified content, summary to CSV.
"$tmp/loadgen" "${common[@]}" -proxy "http://$PROXY_ADDR" -wait 15s \
    -time-scale 2 -ramp 1,2 -verify \
    -out "$tmp/capacity.csv" -per-class "$tmp/classes.csv"
cat "$tmp/capacity.csv"

# Row-schema stability: consumers (cmd/figures -knee, dashboards) key on
# these exact columns. A schema change must be deliberate — update the
# canonical header here and in experiments.LiveCapacityHeader together.
want_header='level,rate_scale,time_scale,offered_rps,achieved_rps,goodput_rps,goodput_kbps,issued,completed,shed,failed,slo_violation_frac,delay_p50_ms,delay_p90_ms,delay_p99_ms,prefix_hit_ratio,bw_hit_ratio,wall_seconds'
got_header=$(grep -v '^#' "$tmp/capacity.csv" | head -n 1)
[[ "$got_header" == "$want_header" ]] || {
    echo "load-check: live-capacity header drifted" >&2
    echo "  want: $want_header" >&2
    echo "  got:  $got_header" >&2
    exit 1
}

# Nonzero goodput: at least one ramp level completed SLO-compliant work.
goodput=$(grep -v '^#' "$tmp/capacity.csv" | tail -n +2 | cut -d, -f6 | sort -g | tail -n 1)
awk -v g="$goodput" 'BEGIN { exit (g > 0) ? 0 : 1 }' || {
    echo "load-check: goodput_rps is zero at every ramp level" >&2
    cat "$tmp/classes.csv" >&2 || true
    exit 1
}

kill -TERM "$pid"
drain_ok=0
if wait "$pid"; then
    drain_ok=1
fi
pid=
if [[ "$drain_ok" != 1 ]]; then
    echo "load-check: proxyd did not exit cleanly on SIGTERM" >&2
    cat "$tmp/proxyd.log" >&2
    exit 1
fi
grep -q 'drained; final stats' "$tmp/proxyd.log" || {
    echo "load-check: no drain confirmation in proxyd log" >&2
    cat "$tmp/proxyd.log" >&2
    exit 1
}
echo "load-check: open-loop ramp produced goodput with a stable schema and proxyd drained cleanly"

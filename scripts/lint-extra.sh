#!/usr/bin/env bash
# Third-party lint pass: staticcheck and govulncheck at pinned
# versions, fetched on demand with `go run pkg@version` so no tool
# binaries live in the repo. On machines without network access to the
# module proxy the fetch fails; that is downgraded to a warning unless
# LINT_STRICT=1 (CI sets it), so offline development keeps `make lint`
# green while CI still enforces both tools.
set -uo pipefail

STATICCHECK_VERSION=${STATICCHECK_VERSION:-v0.4.7}
GOVULNCHECK_VERSION=${GOVULNCHECK_VERSION:-v1.1.3}
LINT_STRICT=${LINT_STRICT:-0}

# Exit patterns that mean "could not reach the module proxy", not
# "the code failed the check".
is_network_failure() {
    grep -Eq 'dial tcp|no such host|connection refused|i/o timeout|proxy.golang.org|TLS handshake timeout|missing GOSUMDB|module lookup disabled|no required module provides package' <<<"$1"
}

run_tool() {
    local label=$1 pkg=$2
    shift 2
    echo "lint-extra: $label"
    local out
    if out=$(go run "$pkg" "$@" 2>&1); then
        [[ -n "$out" ]] && echo "$out"
        return 0
    fi
    local status=$?
    if is_network_failure "$out" && [[ "$LINT_STRICT" != 1 ]]; then
        echo "lint-extra: WARNING: $label unavailable offline (set LINT_STRICT=1 to enforce)" >&2
        return 0
    fi
    echo "$out"
    return "$status"
}

fail=0
run_tool "staticcheck $STATICCHECK_VERSION" \
    "honnef.co/go/tools/cmd/staticcheck@$STATICCHECK_VERSION" ./... || fail=1
run_tool "govulncheck $GOVULNCHECK_VERSION" \
    "golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" ./... || fail=1

exit "$fail"

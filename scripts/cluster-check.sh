#!/usr/bin/env bash
# Cluster smoke (OPERATIONS.md §10): two gates over the multi-node tier.
#
# 1. In-process: the deterministic 3-edge + parent TestCluster smoke
#    (verified digests on every fetch, nonzero peer-hit traffic, zero
#    leaked relays after quiesce).
# 2. Live: three proxyd edges peered over the consistent-hash ring
#    (edge 0 also runs the shared origin), driven round-robin by
#    loadgen with digest verification; the summary row must show a
#    nonzero peer byte fraction, and every node must drain cleanly on
#    SIGTERM.
#
# `make cluster-check` and the CI cluster-check job both call this.
set -euo pipefail

ORIGIN_ADDR=${ORIGIN_ADDR:-127.0.0.1:18100}
EDGE0_ADDR=${EDGE0_ADDR:-127.0.0.1:18101}
EDGE1_ADDR=${EDGE1_ADDR:-127.0.0.1:18102}
EDGE2_ADDR=${EDGE2_ADDR:-127.0.0.1:18103}
tmp=$(mktemp -d)
pids=()

cleanup() {
    for pid in "${pids[@]}"; do
        kill -KILL "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "cluster-check: in-process 3-node smoke"
go test -run 'TestClusterSmoke' -count=1 ./internal/cluster/

go build -o "$tmp/proxyd" ./cmd/proxyd
go build -o "$tmp/loadgen" ./cmd/loadgen

# Every node of one cluster must share the catalog flags and the
# identical positional -peers list (ownership is ring-positional).
catalog=(-objects 24 -mean-kb 64 -origin-kbps 0 -seed 1)
peers="http://$EDGE0_ADDR,http://$EDGE1_ADDR,http://$EDGE2_ADDR"

"$tmp/proxyd" -origin-addr "$ORIGIN_ADDR" -proxy-addr "$EDGE0_ADDR" \
    "${catalog[@]}" -cache-mb 2 -policy LRU -tier edge \
    -peers "$peers" -node-index 0 \
    >"$tmp/edge0.log" 2>&1 &
pids+=($!)
for i in 1 2; do
    addr_var="EDGE${i}_ADDR"
    "$tmp/proxyd" -proxy-addr "${!addr_var}" -origin-url "http://$ORIGIN_ADDR" \
        "${catalog[@]}" -cache-mb 2 -policy LRU -tier edge \
        -peers "$peers" -node-index "$i" \
        >"$tmp/edge$i.log" 2>&1 &
    pids+=($!)
done

# Round-robin over the three edges, verifying every download's digest;
# -wait polls each edge's /stats for readiness.
"$tmp/loadgen" -proxy "$peers" -clients 6 -requests 180 \
    -objects 24 -mean-kb 64 -catalog-seed 1 -wait 15s \
    -verify -min-hit-ratio 0.05 -out "$tmp/loadgen.csv"
cat "$tmp/loadgen.csv"

# The peer tier must have served bytes: find the peer_byte_frac column
# by name and require it nonzero.
awk -F, '
    /^#/ { next }
    !col { for (i = 1; i <= NF; i++) if ($i == "peer_byte_frac") col = i
           if (!col) { print "cluster-check: no peer_byte_frac column" > "/dev/stderr"; exit 1 }
           next }
    { if ($col + 0 <= 0) { print "cluster-check: peer byte fraction " $col " is zero" > "/dev/stderr"; exit 1 }
      print "cluster-check: peer byte fraction " $col }
' "$tmp/loadgen.csv"

for i in 0 1 2; do
    kill -TERM "${pids[$i]}"
done
drain_ok=1
for i in 0 1 2; do
    wait "${pids[$i]}" || drain_ok=0
done
pids=()
for i in 0 1 2; do
    if [[ "$drain_ok" != 1 ]] || ! grep -q 'drained; final stats' "$tmp/edge$i.log"; then
        echo "cluster-check: edge $i did not drain cleanly" >&2
        cat "$tmp/edge$i.log" >&2
        exit 1
    fi
done
echo "cluster-check: 3-node cluster served verified load with peer hits and drained cleanly"

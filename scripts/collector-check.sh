#!/usr/bin/env bash
# Streaming-collector smoke: boot collectd, run the same sweep as two
# concurrent shards pushing rows and refinement metrics at it, and
# require the collected CSV files to be byte-identical to a
# single-process run — no offline merge step involved. Covers both a
# fixed grid (figure5) and an adaptive refinement sweep (refined-e),
# whose shards split the simulation work through the collector's
# metric exchange. `make collector-check` and the CI collector-check
# job both call this.
set -euo pipefail

COLLECT_ADDR=${COLLECT_ADDR:-127.0.0.1:19190}
KEYS=${KEYS:-figure5,refined-e}
tmp=$(mktemp -d)
pid=

cleanup() {
    [[ -n "$pid" ]] && kill -KILL "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

go build -o "$tmp/collectd" ./cmd/collectd
go build -o "$tmp/figures" ./cmd/figures

"$tmp/collectd" -addr "$COLLECT_ADDR" -out "$tmp/collected" -shards 2 \
    -exit-when-done >"$tmp/collectd.log" 2>&1 &
pid=$!

# A shard whose hello finds nobody listening degrades to journal-only
# mode by design, so wait for the collector to answer before starting
# any shard.
ready=0
for _ in $(seq 1 100); do
    if curl -sf "http://$COLLECT_ADDR/v1/status" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [[ "$ready" != 1 ]]; then
    echo "collector-check: collectd never became reachable on $COLLECT_ADDR" >&2
    cat "$tmp/collectd.log" >&2
    exit 1
fi

# Both shards run concurrently so each can resolve the other's
# refinement metrics through the collector instead of re-simulating
# them; the journals make either shard individually resumable.
"$tmp/figures" -out "$tmp/sharded" -only "$KEYS" -shard 0/2 \
    -journal "$tmp/sharded/j0.jsonl" -collect "http://$COLLECT_ADDR" &
s0=$!
"$tmp/figures" -out "$tmp/sharded" -only "$KEYS" -shard 1/2 \
    -journal "$tmp/sharded/j1.jsonl" -collect "http://$COLLECT_ADDR" &
s1=$!
wait "$s0" "$s1"

# collectd writes the canonical CSVs and exits once both shards report
# done; if a shard silently fell back to journal-only mode that exit
# never comes, so bound the wait instead of hanging.
exited=0
for _ in $(seq 1 300); do
    if ! kill -0 "$pid" 2>/dev/null; then
        exited=1
        break
    fi
    sleep 0.1
done
if [[ "$exited" != 1 ]]; then
    echo "collector-check: collectd still running — not every shard reported done" >&2
    curl -s "http://$COLLECT_ADDR/v1/status" >&2 || true
    cat "$tmp/collectd.log" >&2
    exit 1
fi
if ! wait "$pid"; then
    echo "collector-check: collectd did not exit cleanly" >&2
    cat "$tmp/collectd.log" >&2
    exit 1
fi
pid=

"$tmp/figures" -out "$tmp/single" -only "$KEYS"

found=0
for f in "$tmp"/single/*.csv; do
    base=$(basename "$f")
    if ! diff "$f" "$tmp/collected/$base"; then
        echo "collector-check: $base differs between collected and single-process output" >&2
        exit 1
    fi
    found=$((found + 1))
done
if [[ "$found" -lt 2 ]]; then
    echo "collector-check: expected at least 2 collected tables, found $found" >&2
    exit 1
fi
echo "collector-check: collected output of 2 shards is byte-identical to the single-process run ($found tables)"

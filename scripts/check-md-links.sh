#!/usr/bin/env bash
# Checks that every relative Markdown link in the docs set points at a
# file that exists (external http(s) links and pure #anchors are
# skipped). Run from the repo root; `make docs-check` and the CI docs
# job both call this.
set -euo pipefail

docs=(README.md DESIGN.md EXPERIMENTS.md OPERATIONS.md ROADMAP.md PAPER.md CHANGES.md)
failed=0

for doc in "${docs[@]}"; do
    if [[ ! -f "$doc" ]]; then
        echo "MISSING DOC: $doc" >&2
        failed=1
        continue
    fi
    # Extract [text](target) link targets, one per line.
    while IFS= read -r target; do
        [[ -z "$target" ]] && continue
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        # Strip an optional link title (`(path "title")`) and a trailing
        # #anchor from file links.
        path="${target%%[[:space:]]*}"
        path="${path%%#*}"
        if [[ ! -e "$path" ]]; then
            echo "BROKEN LINK: $doc -> $target" >&2
            failed=1
        fi
    done < <(awk '/^```/{fence=!fence; next} !fence' "$doc" |
        grep -oE '\[[^]]*\]\([^)]+\)' | sed -E 's/\[[^]]*\]\(([^)]+)\)/\1/')
done

if [[ $failed -ne 0 ]]; then
    echo "docs-check: broken links found" >&2
    exit 1
fi
echo "docs-check: all relative links resolve"

package streamcache

import (
	"fmt"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"streamcache/internal/collect"
	"streamcache/internal/core"
	"streamcache/internal/experiments"
	"streamcache/internal/units"
)

// Benchmarks regenerate every table and figure of the paper. Each bench
// runs the full experiment per iteration and prints the resulting rows
// once, so `go test -bench=.` reproduces the evaluation end to end.
//
// Scale defaults to experiments.SmallScale (all shapes preserved, ~10x
// cheaper); set STREAMCACHE_BENCH_SCALE=paper for the full Table 1
// configuration (5000 objects, 100k requests, 10 runs - several minutes
// per figure).

func benchScale() experiments.Scale {
	if os.Getenv("STREAMCACHE_BENCH_SCALE") == "paper" {
		return experiments.PaperScale()
	}
	return experiments.SmallScale()
}

var printGate sync.Mutex
var printed = map[string]bool{}

// printTable emits a regenerated table once per process.
func printTable(t *experiments.Table) {
	printGate.Lock()
	defer printGate.Unlock()
	if printed[t.Name] {
		return
	}
	printed[t.Name] = true
	fmt.Printf("\n## %s\n", t.Name)
	if t.Note != "" {
		fmt.Printf("#  %s\n", t.Note)
	}
	for i, h := range t.Header {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(h)
	}
	fmt.Println()
	// Large tables (raw histograms, time series) are summarized to head
	// and tail rows in bench output; cmd/figures emits them in full.
	rows := t.Rows
	const maxRows = 24
	if len(rows) > maxRows {
		for _, row := range rows[:maxRows/2] {
			printRow(row)
		}
		fmt.Printf("... (%d rows elided; run cmd/figures for the full table)\n", len(rows)-maxRows)
		rows = rows[len(rows)-maxRows/2:]
	}
	for _, row := range rows {
		printRow(row)
	}
}

func printRow(row []string) {
	for i, cell := range row {
		if i > 0 {
			fmt.Print(",")
		}
		fmt.Print(cell)
	}
	fmt.Println()
}

func benchExperiment(b *testing.B, build func(experiments.Scale) (*experiments.Table, error)) {
	b.Helper()
	scale := benchScale()
	for i := 0; i < b.N; i++ {
		table, err := build(scale)
		if err != nil {
			b.Fatal(err)
		}
		printTable(table)
	}
}

// BenchmarkTable1WorkloadCharacteristics regenerates Table 1.
func BenchmarkTable1WorkloadCharacteristics(b *testing.B) {
	benchExperiment(b, experiments.Table1)
}

// BenchmarkFigure2BandwidthDistribution regenerates the NLANR bandwidth
// histogram and CDF from a synthesized proxy log.
func BenchmarkFigure2BandwidthDistribution(b *testing.B) {
	benchExperiment(b, experiments.Figure2)
}

// BenchmarkFigure3BandwidthVariability regenerates the sample-to-mean
// ratio histogram and CDF.
func BenchmarkFigure3BandwidthVariability(b *testing.B) {
	benchExperiment(b, experiments.Figure3)
}

// BenchmarkFigure4PathTimeSeries regenerates the measured-path bandwidth
// time series.
func BenchmarkFigure4PathTimeSeries(b *testing.B) {
	benchExperiment(b, experiments.Figure4)
}

// BenchmarkFigure5ConstantBandwidth regenerates the IF/PB/IB comparison
// under constant bandwidth.
func BenchmarkFigure5ConstantBandwidth(b *testing.B) {
	benchExperiment(b, experiments.Figure5)
}

// BenchmarkFigure6ZipfAlpha regenerates the popularity-skew sweep.
func BenchmarkFigure6ZipfAlpha(b *testing.B) {
	benchExperiment(b, experiments.Figure6)
}

// BenchmarkFigure7NLANRVariability regenerates the high-variability
// comparison.
func BenchmarkFigure7NLANRVariability(b *testing.B) {
	benchExperiment(b, experiments.Figure7)
}

// BenchmarkFigure8MeasuredVariability regenerates the measured-path
// variability comparison.
func BenchmarkFigure8MeasuredVariability(b *testing.B) {
	benchExperiment(b, experiments.Figure8)
}

// BenchmarkFigure9EstimatorSweep regenerates the under-estimation factor
// sweep for the delay objective.
func BenchmarkFigure9EstimatorSweep(b *testing.B) {
	benchExperiment(b, experiments.Figure9)
}

// BenchmarkFigure10ValueConstant regenerates the value-policy comparison
// under constant bandwidth.
func BenchmarkFigure10ValueConstant(b *testing.B) {
	benchExperiment(b, experiments.Figure10)
}

// BenchmarkFigure11ValueVariable regenerates the value-policy comparison
// under measured-path variability.
func BenchmarkFigure11ValueVariable(b *testing.B) {
	benchExperiment(b, experiments.Figure11)
}

// BenchmarkFigure12ValueEstimatorSweep regenerates the under-estimation
// sweep for the value objective.
func BenchmarkFigure12ValueEstimatorSweep(b *testing.B) {
	benchExperiment(b, experiments.Figure12)
}

// BenchmarkAblationEvictionGranularity compares byte-granular vs
// whole-object eviction (DESIGN.md section 6).
func BenchmarkAblationEvictionGranularity(b *testing.B) {
	benchExperiment(b, experiments.AblationEvictionGranularity)
}

// BenchmarkAblationEstimators compares oracle, EWMA and underestimating
// bandwidth estimators.
func BenchmarkAblationEstimators(b *testing.B) {
	benchExperiment(b, experiments.AblationEstimators)
}

// sweepScale is the fixed-size grid used by the parallelism benchmarks:
// small enough for a bench smoke, large enough (15 sweep points x 2
// runs) that the worker pool has real work to balance.
func sweepScale(parallelism int) experiments.Scale {
	s := experiments.SmallScale()
	s.Parallelism = parallelism
	return s
}

// benchSweepParallelism regenerates the Figure 5 policy sweep at the
// given worker count. Comparing the ns/op of the Sequential and
// Parallel8 variants on a multi-core runner measures the engine's
// speedup; their tables are bit-identical by the determinism contract.
func benchSweepParallelism(b *testing.B, parallelism int) {
	b.Helper()
	scale := sweepScale(parallelism)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSequential is the single-worker baseline.
func BenchmarkSweepSequential(b *testing.B) { benchSweepParallelism(b, 1) }

// BenchmarkSweepParallel2 uses two sweep workers.
func BenchmarkSweepParallel2(b *testing.B) { benchSweepParallelism(b, 2) }

// BenchmarkSweepParallel8 uses eight sweep workers; on a runner with 8+
// cores it should finish the sweep at least 2x faster than
// BenchmarkSweepSequential.
func BenchmarkSweepParallel8(b *testing.B) { benchSweepParallelism(b, 8) }

// BenchmarkSweepUnmemoized is the A/B control for the workload arena:
// the same Figure 5 sweep as BenchmarkSweepSequential but with
// Scale.NoWorkloadReuse set, so every sweep point regenerates its
// workload and path assignment. The gap between the two isolates the
// memoization win; their tables are byte-identical (regression-tested).
func BenchmarkSweepUnmemoized(b *testing.B) {
	scale := sweepScale(1)
	scale.NoWorkloadReuse = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(scale); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRunParallelism measures the run-level worker pool inside
// a single sim.Run (8 replications) at 1, 2 and 8 workers.
func BenchmarkSimRunParallelism(b *testing.B) {
	for _, par := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := RunSimulation(SimConfig{
					Workload:    WorkloadConfig{NumObjects: 500, NumRequests: 10000},
					CacheBytes:  4 << 30,
					Policy:      NewPB(),
					Runs:        8,
					Seed:        1,
					Parallelism: par,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedRefinedSweep measures the shard-aware refinement
// scheduler end to end: N shards run the adaptive refined-e sweep
// concurrently against an in-process collector, exchanging per-point
// metrics instead of each re-simulating the whole frontier. The
// evals/shard metric is the acceptance number — it must fall as
// total/N when the shard count grows (shards=1 is the baseline), while
// the collected tables stay byte-identical to the single-process run.
func BenchmarkShardedRefinedSweep(b *testing.B) {
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			var total int64
			for i := 0; i < b.N; i++ {
				total += runShardedRefinedSweep(b, shards)
			}
			mean := float64(total) / float64(b.N)
			b.ReportMetric(mean/float64(shards), "evals/shard")
			b.ReportMetric(mean, "evals/total")
		})
	}
}

// runShardedRefinedSweep runs one refined-e sweep split across count
// shards coordinated by a fresh collector, returning the total
// simulation-evaluation count across shards.
func runShardedRefinedSweep(b *testing.B, count int) (total int64) {
	b.Helper()
	srv := collect.NewServer(count)
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()

	base := benchScale()
	base.RefineBudget = 4
	counters := make([]experiments.Counters, count)
	var wg sync.WaitGroup
	errs := make([]error, count)
	for idx := 0; idx < count; idx++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			s := base
			s.Shard = experiments.Shard{Index: idx, Count: count}
			s.Counters = &counters[idx]
			client := collect.NewClient(hs.URL, s.Shard, s.RunFingerprint())
			if client.Down() {
				errs[idx] = fmt.Errorf("shard %d: collector down", idx)
				return
			}
			s.Exchange = client
			sink := client.Sink("refined_e_sweep")
			if err := experiments.Stream("refined-e", s, sink); err != nil {
				errs[idx] = err
				return
			}
			errs[idx] = client.Close()
		}(idx)
	}
	wg.Wait()
	for idx, err := range errs {
		if err != nil {
			b.Fatalf("shard %d/%d: %v", idx, count, err)
		}
	}
	select {
	case <-srv.Done():
	case <-time.After(30 * time.Second):
		b.Fatal("collector never saw all shards done")
	}
	for i := range counters {
		total += counters[i].Evaluations.Load()
	}
	return total
}

// BenchmarkScenarioMatrix regenerates the new estimator x sigma x
// policy scenario grid (36 simulations at small scale) with the default
// GOMAXPROCS-wide pool.
func BenchmarkScenarioMatrix(b *testing.B) {
	benchExperiment(b, experiments.ScenarioMatrix)
}

// BenchmarkCacheOpThroughput measures raw cache Access operations per
// second (the O(log n) heap cost of Section 2.4, over the dense
// slice-backed tables; see also BenchmarkAccess in internal/core for
// the isolated hit/evict split).
func BenchmarkCacheOpThroughput(b *testing.B) {
	const nObjects = 4096
	cache, err := core.New(64*units.MB, core.NewPB())
	if err != nil {
		b.Fatal(err)
	}
	objs := make([]core.Object, nObjects)
	for i := range objs {
		size := int64((i%64 + 1)) * 64 * units.KB
		objs[i] = core.Object{ID: i, Size: size, Duration: 60, Rate: float64(size) / 60, Value: 1}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		obj := objs[i%nObjects]
		cache.Access(obj, obj.Rate/2, float64(i))
	}
}

// BenchmarkSmoothing measures optimal smoothing over a 10k-frame VBR
// trace.
func BenchmarkSmoothing(b *testing.B) {
	frames := make([]float64, 10000)
	for i := range frames {
		frames[i] = float64(500 + (i*7919)%2000)
		if i%30 == 0 {
			frames[i] += 8000
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Smooth(frames, 65536); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadGeneration measures Table 1 workload synthesis.
func BenchmarkWorkloadGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := GenerateWorkload(WorkloadConfig{
			NumObjects:  1000,
			NumRequests: 20000,
			Seed:        int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionStreamMerging evaluates batching/patching composed
// with partial caching (Section 6 future work).
func BenchmarkExtensionStreamMerging(b *testing.B) {
	benchExperiment(b, experiments.ExtensionStreamMerging)
}

// BenchmarkExtensionPartialViewing evaluates GISMO-style partial-viewing
// sessions.
func BenchmarkExtensionPartialViewing(b *testing.B) {
	benchExperiment(b, experiments.ExtensionPartialViewing)
}

// BenchmarkExtensionActiveProbing evaluates the active Padhye-model
// prober against oracle estimation.
func BenchmarkExtensionActiveProbing(b *testing.B) {
	benchExperiment(b, experiments.ExtensionActiveProbing)
}

// BenchmarkExtensionBaselines positions LRU/LFU/GreedyDual-Size against
// the paper's network-aware policies.
func BenchmarkExtensionBaselines(b *testing.B) {
	benchExperiment(b, experiments.ExtensionBaselines)
}

module streamcache

go 1.24
